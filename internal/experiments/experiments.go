// Package experiments regenerates every table and figure of the
// paper's evaluation: Figure 1 and Table 1 (instruction mix), Figure 2
// (static-load coverage vs SPEC-like analogs), Table 2 (cache
// behaviour), Table 4 (load-to-branch and branch-to-load sequences),
// Table 5 (hmmsearch hot-load profile), Table 6 (transformation
// inventory), Table 7 (platforms), Table 8 and Figure 9 (runtimes and
// speedups of the load-transformed code on the four modeled
// machines). Each experiment returns typed data plus a paper-style
// text rendering.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/runner"
	"bioperfload/internal/specx"
)

// ProgramProfile is one program's characterization run, shared by
// every table and figure that reads the same (program, size) pair.
type ProgramProfile = runner.Profile

// Characterize runs every BioPerf program (original code, default
// optimizing compiler) under the full analysis at the given size,
// on a fresh parallel session.
func Characterize(sz bio.Size) ([]*ProgramProfile, error) {
	return CharacterizeSession(context.Background(), runner.NewSession(0), sz)
}

// CharacterizeSession characterizes the nine programs through the
// given session: each program is compiled and functionally simulated
// at most once per session, and the runs fan out across the session's
// worker pool in deterministic (Table 1) order.
func CharacterizeSession(ctx context.Context, s *runner.Session, sz bio.Size) ([]*ProgramProfile, error) {
	return s.CharacterizeAll(ctx, sz)
}

// CharacterizeSessionAccuracy is CharacterizeSession at an explicit
// accuracy tier: exact reproduces the historical tables byte for byte;
// sampled trades bounded per-metric error for phase-sampled speed at
// 100x-scale inputs.
func CharacterizeSessionAccuracy(ctx context.Context, s *runner.Session, sz bio.Size, acc runner.Accuracy) ([]*ProgramProfile, error) {
	progs := bio.All()
	out := make([]*ProgramProfile, len(progs))
	err := s.ForEach(ctx, len(progs), func(i int) error {
		p, err := s.CharacterizeAccuracy(ctx, progs[i], sz, acc)
		out[i] = p
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- Figure 1 / Table 1 ---

// Fig1Row is one bar group of Figure 1.
type Fig1Row struct {
	Name                                   string
	LoadPct, StorePct, BranchPct, OtherPct float64
}

// Fig1 computes the instruction profile.
func Fig1(profiles []*ProgramProfile) []Fig1Row {
	var rows []Fig1Row
	for _, p := range profiles {
		m := p.Analysis.Mix()
		rows = append(rows, Fig1Row{
			Name: p.Name, LoadPct: m.LoadPct, StorePct: m.StorePct,
			BranchPct: m.BranchPct, OtherPct: m.OtherPct,
		})
	}
	return rows
}

// RenderFig1 renders Figure 1 as text.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: instruction profile (% of executed instructions)\n")
	fmt.Fprintf(&b, "%-13s %7s %7s %8s %7s\n", "program", "loads", "stores", "cbranch", "other")
	var al, as, ab, ao float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %6.1f%% %6.1f%% %7.1f%% %6.1f%%\n",
			r.Name, r.LoadPct, r.StorePct, r.BranchPct, r.OtherPct)
		al += r.LoadPct
		as += r.StorePct
		ab += r.BranchPct
		ao += r.OtherPct
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-13s %6.1f%% %6.1f%% %7.1f%% %6.1f%%\n", "average", al/n, as/n, ab/n, ao/n)
	}
	return b.String()
}

// Table1Row is one Table 1 row.
type Table1Row struct {
	Name         string
	Instructions uint64
	FPPct        float64
}

// Table1 computes instruction counts and FP fractions.
func Table1(profiles []*ProgramProfile) []Table1Row {
	var rows []Table1Row
	for _, p := range profiles {
		rows = append(rows, Table1Row{
			Name:         p.Name,
			Instructions: p.Instructions,
			FPPct:        100 * p.Analysis.Mix().FPFraction,
		})
	}
	return rows
}

// RenderTable1 renders Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: executed instructions and floating-point fraction\n")
	fmt.Fprintf(&b, "%-13s %14s %8s\n", "program", "instructions", "FP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %14d %7.2f%%\n", r.Name, r.Instructions, r.FPPct)
	}
	return b.String()
}

// --- Figure 2 ---

// Fig2Series is one coverage curve.
type Fig2Series struct {
	Name  string
	Suite string // "bioperf" or "spec2000-analog"
	// CoverageAt[i] is the cumulative dynamic-load coverage of the
	// top Fig2Points[i] static loads.
	CoverageAt  []float64
	StaticLoads int
}

// Fig2Points are the x-axis sample points.
var Fig2Points = []int{1, 2, 5, 10, 20, 40, 80, 160, 320, 640}

// Fig2 computes coverage curves for three representative BioPerf
// programs and the three SPEC CPU2000 analogs on a fresh session.
func Fig2(sz bio.Size) ([]Fig2Series, error) {
	return Fig2Session(context.Background(), runner.NewSession(0), sz)
}

// Fig2BioPrograms are the three representative BioPerf curves.
var Fig2BioPrograms = []string{"hmmsearch", "hmmpfam", "clustalw"}

// Fig2Session computes the coverage curves through the session: the
// BioPerf curves reuse the shared characterization runs (no
// re-simulation when CharacterizeSession already ran), and the three
// analogs execute on the worker pool.
func Fig2Session(ctx context.Context, s *runner.Session, sz bio.Size) ([]Fig2Series, error) {
	analogs := specx.All()
	out := make([]Fig2Series, len(Fig2BioPrograms)+len(analogs))
	small := sz != bio.SizeC
	err := s.ForEach(ctx, len(out), func(i int) error {
		if i < len(Fig2BioPrograms) {
			p, err := bio.ByName(Fig2BioPrograms[i])
			if err != nil {
				return err
			}
			prof, err := s.Characterize(ctx, p, sz)
			if err != nil {
				return err
			}
			out[i] = coverageSeries(prof.Name, "bioperf", prof.Analysis)
			return nil
		}
		an := analogs[i-len(Fig2BioPrograms)]
		prog, err := an.Compile(small, compiler.Default())
		if err != nil {
			return err
		}
		a := loadchar.New(prog)
		if _, err := an.Run(small, compiler.Default(), a); err != nil {
			return err
		}
		out[i] = coverageSeries(an.Name, "spec2000-analog", a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func coverageSeries(name, suite string, a *loadchar.Analysis) Fig2Series {
	s := Fig2Series{Name: name, Suite: suite, StaticLoads: a.StaticLoadCount()}
	for _, n := range Fig2Points {
		s.CoverageAt = append(s.CoverageAt, a.CoverageAt(n))
	}
	return s
}

// RenderFig2 renders the coverage curves.
func RenderFig2(series []Fig2Series) string {
	var b strings.Builder
	b.WriteString("Figure 2: cumulative dynamic-load coverage of the top-N static loads\n")
	fmt.Fprintf(&b, "%-11s %-16s %7s", "program", "suite", "static")
	for _, n := range Fig2Points {
		fmt.Fprintf(&b, " %6d", n)
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-11s %-16s %7d", s.Name, s.Suite, s.StaticLoads)
		for _, c := range s.CoverageAt {
			fmt.Fprintf(&b, " %5.1f%%", 100*c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Table 2 ---

// Table2Row is one cache-performance row.
type Table2Row struct {
	Name    string
	L1Local float64
	L2Local float64
	Overall float64
	AMAT    float64
}

// Table2 computes the cache rows plus arithmetic and geometric means.
func Table2(profiles []*ProgramProfile) []Table2Row {
	var rows []Table2Row
	for _, p := range profiles {
		r := p.Analysis.CacheReport()
		rows = append(rows, Table2Row{
			Name: p.Name, L1Local: r.L1Local, L2Local: r.L2Local,
			Overall: r.Overall, AMAT: r.AMAT,
		})
	}
	return rows
}

// RenderTable2 renders Table 2 with the paper's average rows.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: cache performance (local miss rates and AMAT)\n")
	fmt.Fprintf(&b, "%-13s %8s %8s %9s %6s\n", "program", "L1", "L2", "overall", "AMAT")
	var sumL1, sumL2, sumOv, sumAM float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %7.2f%% %7.2f%% %8.3f%% %6.2f\n",
			r.Name, 100*r.L1Local, 100*r.L2Local, 100*r.Overall, r.AMAT)
		sumL1 += r.L1Local
		sumL2 += r.L2Local
		sumOv += r.Overall
		sumAM += r.AMAT
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-13s %7.2f%% %7.2f%% %8.3f%% %6.2f\n",
			"average", 100*sumL1/n, 100*sumL2/n, 100*sumOv/n, sumAM/n)
	}
	return b.String()
}

// --- Table 4 ---

// Table4Row is one Table 4(a)+(b) row.
type Table4Row struct {
	Name string
	loadchar.Sequences
}

// Table4 computes the sequence metrics.
func Table4(profiles []*ProgramProfile) []Table4Row {
	var rows []Table4Row
	for _, p := range profiles {
		rows = append(rows, Table4Row{Name: p.Name, Sequences: p.Analysis.Sequences()})
	}
	return rows
}

// RenderTable4 renders Table 4.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: (a) load-to-branch sequences and fed-branch misprediction;\n")
	b.WriteString("         (b) loads right after hard-to-predict (>=5%) branches\n")
	fmt.Fprintf(&b, "%-13s %13s %13s %15s\n", "program", "ld->br %", "fed-br mispr", "ld after hard%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %12.1f%% %12.1f%% %14.1f%%\n",
			r.Name, r.LoadToBranchPct, 100*r.FedBranchMispredictRate, r.LoadAfterHardBranchPct)
	}
	return b.String()
}

// --- Table 5 ---

// Table5 returns the hot-load profile of hmmsearch (top n loads).
func Table5(sz bio.Size, n int) ([]loadchar.HotLoad, error) {
	return Table5Session(context.Background(), runner.NewSession(0), sz, n)
}

// Table5Session reads the hot-load profile out of the session's
// shared hmmsearch characterization run — no extra simulation when
// the run already happened for Figure 1/2 or Tables 1/2/4.
func Table5Session(ctx context.Context, s *runner.Session, sz bio.Size, n int) ([]loadchar.HotLoad, error) {
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		return nil, err
	}
	prof, err := s.Characterize(ctx, p, sz)
	if err != nil {
		return nil, err
	}
	return prof.Analysis.HotLoads(n), nil
}

// RenderTable5 renders the hot-load profile.
func RenderTable5(rows []loadchar.HotLoad) string {
	var b strings.Builder
	b.WriteString("Table 5: profile of the most frequently executed loads in hmmsearch\n")
	fmt.Fprintf(&b, "%-6s %9s %8s %10s %-12s %5s %s\n",
		"pc", "freq", "L1 miss", "br mispred", "function", "line", "file")
	for _, h := range rows {
		fmt.Fprintf(&b, "%-6d %8.2f%% %7.2f%% %9.2f%% %-12s %5d %s\n",
			h.PC, 100*h.Frequency, 100*h.L1MissRate, 100*h.BranchMispred,
			h.Func, h.Line, h.File)
	}
	return b.String()
}

// --- Table 6 ---

// Table6Row mirrors the paper's transformation inventory.
type Table6Row struct {
	Name            string
	LoadsConsidered int
	LinesInvolved   int
}

// Table6 lists the six transformed applications.
func Table6() []Table6Row {
	var rows []Table6Row
	for _, p := range bio.Transformed() {
		rows = append(rows, Table6Row{p.Name, p.LoadsConsidered, p.LinesInvolved})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// RenderTable6 renders Table 6.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: static loads and source lines involved in the transformation\n")
	fmt.Fprintf(&b, "%-13s %12s %12s\n", "program", "static loads", "lines of C")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %12d %12d\n", r.Name, r.LoadsConsidered, r.LinesInvolved)
	}
	return b.String()
}

// --- Table 7 ---

// RenderTable7 renders the platform inventory.
func RenderTable7() string {
	var b strings.Builder
	b.WriteString("Table 7: evaluation platforms (modeled)\n")
	for _, p := range platform.All() {
		fmt.Fprintf(&b, "%-11s %s\n", p.Name, p.Description)
	}
	return b.String()
}

// --- Table 8 / Figure 9 ---

// Table8Cell is one program x platform measurement.
type Table8Cell struct {
	Program     string
	Platform    string
	CyclesOrig  uint64
	CyclesTrans uint64
	Speedup     float64 // CyclesOrig/CyclesTrans - 1
	StatsOrig   pipeline.Stats
	StatsTrans  pipeline.Stats
}

// Table8 runs the six transformable programs, original and
// load-transformed, on all four platform models on a fresh session.
func Table8(sz bio.Size) ([]Table8Cell, error) {
	return Table8Session(context.Background(), runner.NewSession(0), sz)
}

// Table8Session fans the 6 programs x 4 platforms x 2 variants = 48
// timing simulations out across the session's worker pool. Cell order
// (program-major, platform-minor) and cell contents are identical to
// the sequential path; compiles are deduplicated per (program,
// variant, register budget) by the session's compile cache.
func Table8Session(ctx context.Context, s *runner.Session, sz bio.Size) ([]Table8Cell, error) {
	return Table8SessionFidelity(ctx, s, sz, pipeline.FidelityFull)
}

// Table8SessionFidelity is Table8Session with an explicit timing tier.
// The full tier runs each of the 48 cells as its own simulation and is
// byte-identical to the historical output. The fast tier restructures
// the work around runner.EvaluateGroup: platforms that share a
// register budget (Alpha and PowerPC compile identically) share one
// functional run per (program, variant), every platform's scoreboard
// rides that run as a sampled observer, and cells are scattered back
// into the same program-major, platform-minor order.
func Table8SessionFidelity(ctx context.Context, s *runner.Session, sz bio.Size, fid pipeline.Fidelity) ([]Table8Cell, error) {
	progs := bio.Transformed()
	plats := platform.All()
	nCells := len(progs) * len(plats)
	statsOrig := make([]pipeline.Stats, nCells)
	statsTrans := make([]pipeline.Stats, nCells)
	var err error
	if fid == pipeline.FidelityFast {
		err = table8Fast(ctx, s, sz, progs, plats, statsOrig, statsTrans)
	} else {
		err = s.ForEach(ctx, nCells*2, func(k int) error {
			i, transformed := k/2, k%2 == 1
			p := progs[i/len(plats)]
			plat := plats[i%len(plats)]
			st, err := s.Evaluate(ctx, p, plat, sz, transformed)
			if err != nil {
				return err
			}
			if transformed {
				statsTrans[i] = st
			} else {
				statsOrig[i] = st
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	out := make([]Table8Cell, 0, nCells)
	for i := 0; i < nCells; i++ {
		so, st := statsOrig[i], statsTrans[i]
		cell := Table8Cell{
			Program: progs[i/len(plats)].Name, Platform: plats[i%len(plats)].Name,
			CyclesOrig: so.Cycles, CyclesTrans: st.Cycles,
			StatsOrig: so, StatsTrans: st,
		}
		if st.Cycles > 0 {
			cell.Speedup = float64(so.Cycles)/float64(st.Cycles) - 1
		}
		out = append(out, cell)
	}
	return out, nil
}

// platGroup is a set of platform indices sharing one compiled stream.
type platGroup struct {
	opts    compiler.Options
	platIdx []int
}

// groupPlatforms buckets platforms by their compiler options: within a
// bucket the compiled program — and therefore the committed stream —
// is identical, so one functional run can feed every bucket member.
func groupPlatforms(plats []platform.Platform) []platGroup {
	var groups []platGroup
	for j, pl := range plats {
		opts := pl.EvalOptions()
		found := false
		for gi := range groups {
			if groups[gi].opts == opts {
				groups[gi].platIdx = append(groups[gi].platIdx, j)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, platGroup{opts: opts, platIdx: []int{j}})
		}
	}
	return groups
}

// table8Fast measures every cell on the scoreboard tier: one grouped
// run per (program, variant, register budget).
func table8Fast(ctx context.Context, s *runner.Session, sz bio.Size, progs []*bio.Program, plats []platform.Platform, statsOrig, statsTrans []pipeline.Stats) error {
	groups := groupPlatforms(plats)
	type unit struct {
		prog        int
		transformed bool
		group       int
	}
	var units []unit
	for i := range progs {
		for _, tr := range []bool{false, true} {
			for g := range groups {
				units = append(units, unit{prog: i, transformed: tr, group: g})
			}
		}
	}
	return s.ForEach(ctx, len(units), func(k int) error {
		u := units[k]
		g := groups[u.group]
		cfgs := make([]pipeline.Config, len(g.platIdx))
		for x, j := range g.platIdx {
			c := plats[j].Pipeline
			c.Fidelity = pipeline.FidelityFast
			cfgs[x] = c
		}
		sts, err := s.EvaluateGroup(ctx, progs[u.prog], cfgs, g.opts, sz, u.transformed)
		if err != nil {
			return err
		}
		for x, j := range g.platIdx {
			idx := u.prog*len(plats) + j
			if u.transformed {
				statsTrans[idx] = sts[x]
			} else {
				statsOrig[idx] = sts[x]
			}
		}
		return nil
	})
}

// RenderTable8 renders the cycle counts.
func RenderTable8(cells []Table8Cell) string {
	var b strings.Builder
	b.WriteString("Table 8: simulated cycles, original vs load-transformed\n")
	fmt.Fprintf(&b, "%-13s %-11s %14s %14s %9s\n",
		"program", "platform", "original", "transformed", "speedup")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-13s %-11s %14d %14d %8.1f%%\n",
			c.Program, c.Platform, c.CyclesOrig, c.CyclesTrans, 100*c.Speedup)
	}
	return b.String()
}

// Fig9Row is a per-platform speedup summary.
type Fig9Row struct {
	Platform string
	// PerProgram maps program name to speedup.
	PerProgram map[string]float64
	// HarmonicMean is the paper's summary statistic.
	HarmonicMean float64
}

// Fig9 computes per-platform speedups and harmonic means from the
// Table 8 cells.
func Fig9(cells []Table8Cell) []Fig9Row {
	byPlat := make(map[string][]Table8Cell)
	var order []string
	for _, c := range cells {
		if _, ok := byPlat[c.Platform]; !ok {
			order = append(order, c.Platform)
		}
		byPlat[c.Platform] = append(byPlat[c.Platform], c)
	}
	var out []Fig9Row
	for _, plat := range order {
		row := Fig9Row{Platform: plat, PerProgram: make(map[string]float64)}
		// Harmonic mean of the speedup ratios (orig/trans), reported
		// as a percentage gain, matching the paper's figure 9.
		var invSum float64
		n := 0
		for _, c := range byPlat[plat] {
			row.PerProgram[c.Program] = c.Speedup
			ratio := 1 + c.Speedup
			if ratio > 0 {
				invSum += 1 / ratio
				n++
			}
		}
		if n > 0 {
			row.HarmonicMean = float64(n)/invSum - 1
		}
		out = append(out, row)
	}
	return out
}

// RenderFig9 renders the speedup summary.
func RenderFig9(rows []Fig9Row) string {
	var progs []string
	if len(rows) > 0 {
		for p := range rows[0].PerProgram {
			progs = append(progs, p)
		}
		sort.Strings(progs)
	}
	var b strings.Builder
	b.WriteString("Figure 9: speedup of load-transformed over original code\n")
	fmt.Fprintf(&b, "%-11s", "platform")
	for _, p := range progs {
		fmt.Fprintf(&b, " %12s", p)
	}
	fmt.Fprintf(&b, " %9s\n", "hmean")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s", r.Platform)
		for _, p := range progs {
			fmt.Fprintf(&b, " %11.1f%%", 100*r.PerProgram[p])
		}
		fmt.Fprintf(&b, " %8.1f%%\n", 100*r.HarmonicMean)
	}
	return b.String()
}
