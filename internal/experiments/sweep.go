package experiments

import (
	"context"
	"fmt"
	"strings"

	"bioperfload/internal/bio"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/runner"
)

// The sweep experiment is the payoff of the fast tier: where the paper
// could evaluate four concrete machines, the scoreboard's cost per
// machine config is low enough to grid the microarchitectural
// parameters the paper singles out — L1 load-to-use latency (the
// latency the transformation hides), issue width (how much independent
// work can cover it), and mispredict penalty (the pipeline-depth proxy
// for the load-to-branch cost) — across all six transformed programs.
// Every grid point rides the same twelve functional runs (six
// programs, two variants) through runner.EvaluateGroup, so a 45-point
// grid costs little more than one fast Table 8 column.

// SweepPoint is one machine configuration of the grid, expressed as
// deltas from the Alpha 21264 baseline.
type SweepPoint struct {
	L1Lat             int // L1 load-to-use latency, cycles
	IssueWidth        int // instructions issued per cycle
	MispredictPenalty int // redirect cost, cycles (pipeline-depth proxy)
}

// Name renders the point compactly ("l1=3 w=4 mp=7").
func (p SweepPoint) Name() string {
	return fmt.Sprintf("l1=%d w=%d mp=%d", p.L1Lat, p.IssueWidth, p.MispredictPenalty)
}

// SweepGrid is the default grid: 5 L1 latencies x 3 issue widths x 3
// mispredict penalties = 45 machine points, bracketing the paper's
// four platforms (L1 1..3 cycles, widths 3..6, penalties 6..20).
func SweepGrid() []SweepPoint {
	var pts []SweepPoint
	for _, l1 := range []int{1, 2, 3, 4, 5} {
		for _, w := range []int{2, 4, 8} {
			for _, mp := range []int{7, 13, 20} {
				pts = append(pts, SweepPoint{L1Lat: l1, IssueWidth: w, MispredictPenalty: mp})
			}
		}
	}
	return pts
}

// SweepRow is one grid point's speedups across the transformed
// programs.
type SweepRow struct {
	Point        SweepPoint
	PerProgram   map[string]float64 // program -> speedup (orig/trans - 1)
	HarmonicMean float64            // Figure 9's summary statistic
}

// SweepSession measures every grid point on the fast tier. The grid
// always runs on the scoreboard — a 45-point full-model sweep would
// cost ~45x a full Table 8 column and is exactly the workload the fast
// tier exists for — and all points share one functional run per
// (program, variant) at the default register budget.
func SweepSession(ctx context.Context, s *runner.Session, sz bio.Size, points []SweepPoint) ([]SweepRow, error) {
	if len(points) == 0 {
		points = SweepGrid()
	}
	progs := bio.Transformed()
	base := platform.Alpha21264()
	cfgs := make([]pipeline.Config, len(points))
	for i, pt := range points {
		c := base.Pipeline
		c.Name = "sweep-" + pt.Name()
		c.Cache.Lat.L1 = pt.L1Lat
		c.IssueWidth = pt.IssueWidth
		c.MispredictPenalty = pt.MispredictPenalty
		c.Fidelity = pipeline.FidelityFast
		cfgs[i] = c
	}
	opts := base.EvalOptions()
	// cycles[prog][variant][point]
	cycles := make([][2][]uint64, len(progs))
	err := s.ForEach(ctx, len(progs)*2, func(k int) error {
		i, transformed := k/2, k%2 == 1
		sts, err := s.EvaluateGroup(ctx, progs[i], cfgs, opts, sz, transformed)
		if err != nil {
			return err
		}
		cyc := make([]uint64, len(points))
		for x, st := range sts {
			cyc[x] = st.Cycles
		}
		v := 0
		if transformed {
			v = 1
		}
		cycles[i][v] = cyc
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, len(points))
	for x, pt := range points {
		row := SweepRow{Point: pt, PerProgram: make(map[string]float64, len(progs))}
		var invSum float64
		n := 0
		for i, p := range progs {
			orig, trans := cycles[i][0][x], cycles[i][1][x]
			var sp float64
			if trans > 0 {
				sp = float64(orig)/float64(trans) - 1
			}
			row.PerProgram[p.Name] = sp
			if ratio := 1 + sp; ratio > 0 {
				invSum += 1 / ratio
				n++
			}
		}
		if n > 0 {
			row.HarmonicMean = float64(n)/invSum - 1
		}
		rows[x] = row
	}
	return rows, nil
}

// RenderSweep renders the grid with per-program speedups and the
// harmonic mean, flagging the best and worst points.
func RenderSweep(rows []SweepRow) string {
	progs := make([]string, 0, 6)
	for _, p := range bio.Transformed() {
		progs = append(progs, p.Name)
	}
	best, worst := 0, 0
	for i, r := range rows {
		if r.HarmonicMean > rows[best].HarmonicMean {
			best = i
		}
		if r.HarmonicMean < rows[worst].HarmonicMean {
			worst = i
		}
	}
	var b strings.Builder
	b.WriteString("Sweep: transformation speedup across the machine grid (fast tier)\n")
	fmt.Fprintf(&b, "%-15s", "machine")
	for _, p := range progs {
		fmt.Fprintf(&b, " %12s", p)
	}
	fmt.Fprintf(&b, " %9s\n", "hmean")
	for i, r := range rows {
		fmt.Fprintf(&b, "%-15s", r.Point.Name())
		for _, p := range progs {
			fmt.Fprintf(&b, " %11.1f%%", 100*r.PerProgram[p])
		}
		fmt.Fprintf(&b, " %8.1f%%", 100*r.HarmonicMean)
		switch i {
		case best:
			b.WriteString("  <- best")
		case worst:
			b.WriteString("  <- worst")
		}
		b.WriteString("\n")
	}
	return b.String()
}
