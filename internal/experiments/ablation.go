package experiments

import (
	"context"
	"fmt"
	"strings"

	"bioperfload/internal/bio"
	"bioperfload/internal/bpred"
	"bioperfload/internal/compiler"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/runner"
)

// The ablations test the paper's causal claims directly, something
// the original authors could not do on fixed hardware:
//
//  1. L1 hit latency: the paper attributes the slowdown to the
//     multicycle L1 hit latency. On a hypothetical 1-cycle-L1 Alpha
//     the transformation's latency-hiding benefit should shrink
//     (only the branch-elimination benefit remains).
//  2. Compiler passes: disabling CMOV if-conversion on the
//     transformed sources isolates how much of the win is branch
//     elimination vs. load scheduling.
//  3. Branch predictor: with a perfect predictor the load-to-branch
//     penalty disappears, so the gap between original and
//     transformed narrows; with a poor (always-taken) predictor it
//     widens.

// AblationResult is one variant's original/transformed cycle pair.
type AblationResult struct {
	Variant     string
	CyclesOrig  uint64
	CyclesTrans uint64
}

// Speedup returns the transformation gain under this variant.
func (r AblationResult) Speedup() float64 {
	if r.CyclesTrans == 0 {
		return 0
	}
	return float64(r.CyclesOrig)/float64(r.CyclesTrans) - 1
}

// ablationVariant is one (pipeline config, compiler options) point of
// an ablation sweep.
type ablationVariant struct {
	name string
	cfg  pipeline.Config
	opts compiler.Options
}

// runVariants measures every variant's original/transformed cycle
// pair on the session's worker pool, preserving variant order. On the
// full tier each variant is two independent timing runs, so a sweep of
// v variants fans out into 2v jobs; compiles dedupe through the
// session cache. On the fast tier, variants sharing compiler options
// share one functional run per variant set and direction — their
// scoreboards all observe the same sampled stream.
func runVariants(ctx context.Context, s *runner.Session, p *bio.Program, variants []ablationVariant, sz bio.Size, fid pipeline.Fidelity) ([]AblationResult, error) {
	out := make([]AblationResult, len(variants))
	for i, v := range variants {
		out[i].Variant = v.name
	}
	if fid == pipeline.FidelityFast {
		// Group variants by compiler options; one grouped run per
		// (options bucket, direction).
		var groups []struct {
			opts compiler.Options
			idx  []int
		}
		for i, v := range variants {
			found := false
			for gi := range groups {
				if groups[gi].opts == v.opts {
					groups[gi].idx = append(groups[gi].idx, i)
					found = true
					break
				}
			}
			if !found {
				groups = append(groups, struct {
					opts compiler.Options
					idx  []int
				}{opts: v.opts, idx: []int{i}})
			}
		}
		err := s.ForEach(ctx, len(groups)*2, func(k int) error {
			g, transformed := groups[k/2], k%2 == 1
			cfgs := make([]pipeline.Config, len(g.idx))
			for x, i := range g.idx {
				c := variants[i].cfg
				c.Fidelity = pipeline.FidelityFast
				cfgs[x] = c
			}
			sts, err := s.EvaluateGroup(ctx, p, cfgs, g.opts, sz, transformed)
			if err != nil {
				return err
			}
			for x, i := range g.idx {
				if transformed {
					out[i].CyclesTrans = sts[x].Cycles
				} else {
					out[i].CyclesOrig = sts[x].Cycles
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	err := s.ForEach(ctx, len(variants)*2, func(k int) error {
		i, transformed := k/2, k%2 == 1
		v := variants[i]
		st, err := s.EvaluateOpts(ctx, p, v.cfg, v.opts, sz, transformed)
		if err != nil {
			return err
		}
		if transformed {
			out[i].CyclesTrans = st.Cycles
		} else {
			out[i].CyclesOrig = st.Cycles
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AblateL1Latency measures the program on Alpha-like machines whose
// L1 load-to-use latency sweeps over the given values.
func AblateL1Latency(ctx context.Context, s *runner.Session, progName string, sz bio.Size, latencies []int, fid pipeline.Fidelity) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	base := platform.Alpha21264()
	var variants []ablationVariant
	for _, lat := range latencies {
		cfg := base.Pipeline
		cfg.Cache.Lat.L1 = lat
		variants = append(variants, ablationVariant{
			name: fmt.Sprintf("L1=%dcyc", lat), cfg: cfg, opts: compiler.Default(),
		})
	}
	return runVariants(ctx, s, p, variants, sz, fid)
}

// AblatePredictor measures the program on the Alpha model under
// different branch predictors.
func AblatePredictor(ctx context.Context, s *runner.Session, progName string, sz bio.Size, fid pipeline.Fidelity) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	base := platform.Alpha21264()
	preds := []struct {
		name string
		mk   func() bpred.Predictor
	}{
		{"hybrid", func() bpred.Predictor { return bpred.NewPaperHybrid() }},
		{"bimodal", func() bpred.Predictor { return bpred.NewBimodal() }},
		{"always-taken", func() bpred.Predictor { return &bpred.Static{Taken: true} }},
	}
	var variants []ablationVariant
	for _, v := range preds {
		cfg := base.Pipeline
		cfg.Predictor = v.mk
		variants = append(variants, ablationVariant{name: v.name, cfg: cfg, opts: compiler.Default()})
	}
	return runVariants(ctx, s, p, variants, sz, fid)
}

// AblatePasses measures the program with compiler passes selectively
// disabled (always on the Alpha model), isolating the contribution of
// if-conversion and of the local scheduler.
func AblatePasses(ctx context.Context, s *runner.Session, progName string, sz bio.Size, fid pipeline.Fidelity) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	cfg := platform.Alpha21264().Pipeline
	passVariants := []struct {
		name string
		opts compiler.Options
	}{
		{"full-O2", compiler.Default()},
		{"no-ifconv", func() compiler.Options {
			o := compiler.Default()
			o.Opt.IfConvert = false
			return o
		}()},
		{"no-sched", func() compiler.Options {
			o := compiler.Default()
			o.Opt.Schedule = false
			return o
		}()},
		{"O0", func() compiler.Options {
			o := compiler.Default()
			o.Opt.Fold = false
			o.Opt.DCE = false
			o.Opt.IfConvert = false
			o.Opt.Schedule = false
			return o
		}()},
	}
	var variants []ablationVariant
	for _, v := range passVariants {
		variants = append(variants, ablationVariant{name: v.name, cfg: cfg, opts: v.opts})
	}
	return runVariants(ctx, s, p, variants, sz, fid)
}

// RenderAblation renders one ablation series.
func RenderAblation(title string, rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", title)
	fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", "variant", "original", "transformed", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14d %14d %8.1f%%\n",
			r.Variant, r.CyclesOrig, r.CyclesTrans, 100*r.Speedup())
	}
	return b.String()
}

// AblateRestrict reproduces the paper's Itanium `restrict` experiment
// on any platform: the ORIGINAL sources compiled normally, the
// original sources compiled with restrict-qualified pointer
// parameters (which unblocks global load hoisting and scheduling),
// and the hand-transformed sources. The paper reports that on the
// Itanium the restrict baseline and the hand-transformed code perform
// similarly.
func AblateRestrict(ctx context.Context, s *runner.Session, progName, platName string, sz bio.Size, fid pipeline.Fidelity) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	plat, err := platform.ByName(platName)
	if err != nil {
		return nil, err
	}
	plat.Pipeline.Fidelity = fid
	opts := compiler.Options{
		Opt:          compiler.Default().Opt,
		AllocIntRegs: plat.AllocIntRegs,
		AllocFPRegs:  plat.AllocFPRegs,
	}
	restrictOpts := opts
	restrictOpts.Opt.RestrictParams = true

	jobs := []struct {
		transformed bool
		opts        compiler.Options
	}{
		{false, opts},         // baseline
		{false, restrictOpts}, // original + restrict-qualified params
		{true, opts},          // hand-transformed
	}
	cycles := make([]uint64, len(jobs))
	err = s.ForEach(ctx, len(jobs), func(i int) error {
		st, err := s.EvaluateOpts(ctx, p, plat.Pipeline, jobs[i].opts, sz, jobs[i].transformed)
		if err != nil {
			return err
		}
		cycles[i] = st.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}
	base, restr, trans := cycles[0], cycles[1], cycles[2]
	return []AblationResult{
		{Variant: "baseline", CyclesOrig: base, CyclesTrans: base},
		{Variant: "baseline+restrict", CyclesOrig: base, CyclesTrans: restr},
		{Variant: "hand-transformed", CyclesOrig: base, CyclesTrans: trans},
	}, nil
}
