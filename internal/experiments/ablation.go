package experiments

import (
	"fmt"
	"strings"

	"bioperfload/internal/bio"
	"bioperfload/internal/bpred"
	"bioperfload/internal/compiler"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
)

// The ablations test the paper's causal claims directly, something
// the original authors could not do on fixed hardware:
//
//  1. L1 hit latency: the paper attributes the slowdown to the
//     multicycle L1 hit latency. On a hypothetical 1-cycle-L1 Alpha
//     the transformation's latency-hiding benefit should shrink
//     (only the branch-elimination benefit remains).
//  2. Compiler passes: disabling CMOV if-conversion on the
//     transformed sources isolates how much of the win is branch
//     elimination vs. load scheduling.
//  3. Branch predictor: with a perfect predictor the load-to-branch
//     penalty disappears, so the gap between original and
//     transformed narrows; with a poor (always-taken) predictor it
//     widens.

// AblationResult is one variant's original/transformed cycle pair.
type AblationResult struct {
	Variant     string
	CyclesOrig  uint64
	CyclesTrans uint64
}

// Speedup returns the transformation gain under this variant.
func (r AblationResult) Speedup() float64 {
	if r.CyclesTrans == 0 {
		return 0
	}
	return float64(r.CyclesOrig)/float64(r.CyclesTrans) - 1
}

// runPair measures one program under a pipeline config and compiler
// options, original and transformed.
func runPair(p *bio.Program, cfg pipeline.Config, opts compiler.Options, sz bio.Size) (uint64, uint64, error) {
	run := func(tr bool) (uint64, error) {
		model := pipeline.NewModel(cfg)
		if _, err := p.Run(tr, sz, opts, model); err != nil {
			return 0, err
		}
		return model.Stats().Cycles, nil
	}
	o, err := run(false)
	if err != nil {
		return 0, 0, err
	}
	tr, err := run(true)
	if err != nil {
		return 0, 0, err
	}
	return o, tr, nil
}

// AblateL1Latency measures the program on Alpha-like machines whose
// L1 load-to-use latency sweeps over the given values.
func AblateL1Latency(progName string, sz bio.Size, latencies []int) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	base := platform.Alpha21264()
	var out []AblationResult
	for _, lat := range latencies {
		cfg := base.Pipeline
		cfg.Cache.Lat.L1 = lat
		o, tr, err := runPair(p, cfg, compiler.Default(), sz)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Variant:     fmt.Sprintf("L1=%dcyc", lat),
			CyclesOrig:  o,
			CyclesTrans: tr,
		})
	}
	return out, nil
}

// AblatePredictor measures the program on the Alpha model under
// different branch predictors.
func AblatePredictor(progName string, sz bio.Size) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	base := platform.Alpha21264()
	variants := []struct {
		name string
		mk   func() bpred.Predictor
	}{
		{"hybrid", func() bpred.Predictor { return bpred.NewPaperHybrid() }},
		{"bimodal", func() bpred.Predictor { return bpred.NewBimodal() }},
		{"always-taken", func() bpred.Predictor { return &bpred.Static{Taken: true} }},
	}
	var out []AblationResult
	for _, v := range variants {
		cfg := base.Pipeline
		cfg.Predictor = v.mk
		o, tr, err := runPair(p, cfg, compiler.Default(), sz)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Variant: v.name, CyclesOrig: o, CyclesTrans: tr})
	}
	return out, nil
}

// AblatePasses measures the program with compiler passes selectively
// disabled (always on the Alpha model), isolating the contribution of
// if-conversion and of the local scheduler.
func AblatePasses(progName string, sz bio.Size) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	cfg := platform.Alpha21264().Pipeline
	variants := []struct {
		name string
		opts compiler.Options
	}{
		{"full-O2", compiler.Default()},
		{"no-ifconv", func() compiler.Options {
			o := compiler.Default()
			o.Opt.IfConvert = false
			return o
		}()},
		{"no-sched", func() compiler.Options {
			o := compiler.Default()
			o.Opt.Schedule = false
			return o
		}()},
		{"O0", func() compiler.Options {
			o := compiler.Default()
			o.Opt.Fold = false
			o.Opt.DCE = false
			o.Opt.IfConvert = false
			o.Opt.Schedule = false
			return o
		}()},
	}
	var out []AblationResult
	for _, v := range variants {
		o, tr, err := runPair(p, cfg, v.opts, sz)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Variant: v.name, CyclesOrig: o, CyclesTrans: tr})
	}
	return out, nil
}

// RenderAblation renders one ablation series.
func RenderAblation(title string, rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", title)
	fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", "variant", "original", "transformed", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14d %14d %8.1f%%\n",
			r.Variant, r.CyclesOrig, r.CyclesTrans, 100*r.Speedup())
	}
	return b.String()
}

// AblateRestrict reproduces the paper's Itanium `restrict` experiment
// on any platform: the ORIGINAL sources compiled normally, the
// original sources compiled with restrict-qualified pointer
// parameters (which unblocks global load hoisting and scheduling),
// and the hand-transformed sources. The paper reports that on the
// Itanium the restrict baseline and the hand-transformed code perform
// similarly.
func AblateRestrict(progName, platName string, sz bio.Size) ([]AblationResult, error) {
	p, err := bio.ByName(progName)
	if err != nil {
		return nil, err
	}
	plat, err := platform.ByName(platName)
	if err != nil {
		return nil, err
	}
	opts := compiler.Options{
		Opt:          compiler.Default().Opt,
		AllocIntRegs: plat.AllocIntRegs,
		AllocFPRegs:  plat.AllocFPRegs,
	}
	restrictOpts := opts
	restrictOpts.Opt.RestrictParams = true

	measure := func(transformed bool, o compiler.Options) (uint64, error) {
		model := pipeline.NewModel(plat.Pipeline)
		if _, err := p.Run(transformed, sz, o, model); err != nil {
			return 0, err
		}
		return model.Stats().Cycles, nil
	}
	base, err := measure(false, opts)
	if err != nil {
		return nil, err
	}
	restr, err := measure(false, restrictOpts)
	if err != nil {
		return nil, err
	}
	trans, err := measure(true, opts)
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{Variant: "baseline", CyclesOrig: base, CyclesTrans: base},
		{Variant: "baseline+restrict", CyclesOrig: base, CyclesTrans: restr},
		{Variant: "hand-transformed", CyclesOrig: base, CyclesTrans: trans},
	}, nil
}
