package experiments

import (
	"context"
	"strings"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/runner"
)

// TestL1LatencyAblation checks the paper's causal claim directly:
// the transformation's benefit comes substantially from hiding the
// multicycle L1 hit latency, so on a hypothetical single-cycle-L1
// machine the speedup must shrink.
func TestL1LatencyAblation(t *testing.T) {
	rows, err := AblateL1Latency(context.Background(), runner.NewSession(0), "hmmsearch", bio.SizeTest, []int{1, 3, 5}, pipeline.FidelityFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	s1, s3, s5 := rows[0].Speedup(), rows[1].Speedup(), rows[2].Speedup()
	t.Logf("speedup: L1=1cyc %.1f%%, L1=3cyc %.1f%%, L1=5cyc %.1f%%",
		100*s1, 100*s3, 100*s5)
	if !(s1 < s3 && s3 < s5) {
		t.Errorf("speedup should grow with L1 latency: %.3f, %.3f, %.3f", s1, s3, s5)
	}
	if !strings.Contains(RenderAblation("L1", rows), "L1=3cyc") {
		t.Error("rendering broken")
	}
}

// TestPredictorAblation: with a worse predictor the mispredictions
// multiply and the branchy original suffers more, so the
// transformation gains more.
func TestPredictorAblation(t *testing.T) {
	rows, err := AblatePredictor(context.Background(), runner.NewSession(0), "hmmsearch", bio.SizeTest, pipeline.FidelityFull)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	hy := byName["hybrid"].Speedup()
	at := byName["always-taken"].Speedup()
	t.Logf("speedup: hybrid %.1f%%, always-taken %.1f%%", 100*hy, 100*at)
	if at <= hy {
		t.Errorf("a poor predictor should amplify the transformation's benefit: hybrid %.3f, always-taken %.3f", hy, at)
	}
}

// TestPassAblation: disabling if-conversion must reduce the
// transformed code's advantage (the CMOVs are a large part of the
// win), and the ORIGINAL code must be essentially unaffected by
// if-conversion (its guarded stores cannot convert).
func TestPassAblation(t *testing.T) {
	rows, err := AblatePasses(context.Background(), runner.NewSession(0), "hmmsearch", bio.SizeTest, pipeline.FidelityFull)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["full-O2"]
	noIC := byName["no-ifconv"]
	t.Logf("full-O2 speedup %.1f%%, no-ifconv speedup %.1f%%",
		100*full.Speedup(), 100*noIC.Speedup())
	if noIC.Speedup() >= full.Speedup() {
		t.Errorf("disabling if-conversion should reduce the transformed advantage: full %.3f, no-ifconv %.3f",
			full.Speedup(), noIC.Speedup())
	}
	// If-conversion barely changes the ORIGINAL code (its IF bodies
	// store to memory and cannot convert): within 5%.
	ratio := float64(noIC.CyclesOrig) / float64(full.CyclesOrig)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("if-conversion changed the original code's cycles by %.1f%%, expected ~0",
			100*(ratio-1))
	}
	// O0 is slower than O2 (the gap is modest in cycles because the
	// out-of-order core hides much of the redundant O0 work as ILP).
	if byName["O0"].CyclesOrig <= full.CyclesOrig {
		t.Errorf("O0 original (%d) should be slower than O2 (%d)",
			byName["O0"].CyclesOrig, full.CyclesOrig)
	}
}

// TestRestrictAblation reproduces the paper's restrict experiment and
// its two findings: on the in-order Itanium, restrict-qualified
// parameters help the baseline (the compiler may hoist loads
// globally), while "the restrict keyword does not help on the other
// three platforms" — on the out-of-order Alpha its effect is ~0. In
// both cases the hand transformation remains the strongest (it also
// eliminates the branches, which restrict cannot).
func TestRestrictAblation(t *testing.T) {
	s := runner.NewSession(0)
	measure := func(plat string) (base, restr, trans uint64) {
		rows, err := AblateRestrict(context.Background(), s, "hmmsearch", plat, bio.SizeTest, pipeline.FidelityFull)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: baseline %d, +restrict %d (%.1f%%), hand-transformed %d (%.1f%%)",
			plat, rows[0].CyclesTrans, rows[1].CyclesTrans,
			100*(float64(rows[0].CyclesTrans)/float64(rows[1].CyclesTrans)-1),
			rows[2].CyclesTrans,
			100*(float64(rows[0].CyclesTrans)/float64(rows[2].CyclesTrans)-1))
		return rows[0].CyclesTrans, rows[1].CyclesTrans, rows[2].CyclesTrans
	}

	base, restr, trans := measure("itanium2")
	if restr >= base {
		t.Errorf("itanium2: restrict should help the in-order baseline (%d -> %d)", base, restr)
	}
	if trans >= restr {
		t.Errorf("itanium2: the hand transformation should still beat restrict (%d vs %d)", trans, restr)
	}

	base, restr, trans = measure("alpha21264")
	// "Does not help": within a few percent of the baseline on the
	// out-of-order Alpha.
	ratio := float64(restr) / float64(base)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("alpha21264: restrict changed the baseline by %.1f%%, paper says ~0", 100*(1/ratio-1))
	}
	if trans >= base {
		t.Errorf("alpha21264: hand transformation should speed up the baseline")
	}
}
