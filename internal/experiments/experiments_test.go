package experiments

import (
	"context"
	"os"
	"strings"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/runner"
)

// The experiment tests run at test size so the whole suite stays
// fast; the EXPERIMENTS.md numbers come from cmd/experiments at the
// class-B/C sizes.

func characterizeOnce(t *testing.T) []*ProgramProfile {
	t.Helper()
	profiles, err := Characterize(bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 9 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	return profiles
}

func TestFig1AndTable1(t *testing.T) {
	profiles := characterizeOnce(t)
	rows := Fig1(profiles)
	for _, r := range rows {
		sum := r.LoadPct + r.StorePct + r.BranchPct + r.OtherPct
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: class percentages sum to %f", r.Name, sum)
		}
		if r.LoadPct < 5 || r.LoadPct > 60 {
			t.Errorf("%s: implausible load%% %.1f", r.Name, r.LoadPct)
		}
	}
	t1 := Table1(profiles)
	byName := map[string]Table1Row{}
	for _, r := range t1 {
		byName[r.Name] = r
		if r.Instructions == 0 {
			t.Errorf("%s: zero instructions", r.Name)
		}
	}
	// Table 1 shape: promlk is the FP outlier, hmmsearch is integer.
	if byName["promlk"].FPPct < byName["predator"].FPPct ||
		byName["predator"].FPPct < byName["hmmsearch"].FPPct {
		t.Errorf("FP%% shape wrong: promlk=%.1f predator=%.1f hmmsearch=%.1f",
			byName["promlk"].FPPct, byName["predator"].FPPct, byName["hmmsearch"].FPPct)
	}
	out := RenderFig1(rows) + RenderTable1(t1)
	for _, want := range []string{"Figure 1", "Table 1", "hmmsearch", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFig2Contrast(t *testing.T) {
	series, err := Fig2(bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("got %d series", len(series))
	}
	// Index of the 80-load point.
	idx80 := -1
	for i, n := range Fig2Points {
		if n == 80 {
			idx80 = i
		}
	}
	var bioMin, specMax float64 = 2, -1
	for _, s := range series {
		c := s.CoverageAt[idx80]
		if s.Suite == "bioperf" {
			if c < bioMin {
				bioMin = c
			}
		} else if c > specMax {
			specMax = c
		}
	}
	// The paper's Figure 2 contrast: every BioPerf curve is above
	// every SPEC-analog curve at 80 static loads.
	if bioMin <= specMax {
		t.Errorf("coverage contrast inverted: bioperf min %.2f <= analog max %.2f", bioMin, specMax)
	}
	if bioMin < 0.9 {
		t.Errorf("bioperf top-80 coverage %.2f, paper reports >90%%", bioMin)
	}
	if !strings.Contains(RenderFig2(series), "hmmsearch") {
		t.Error("rendering broken")
	}
}

func TestTable2(t *testing.T) {
	profiles := characterizeOnce(t)
	rows := Table2(profiles)
	for _, r := range rows {
		if r.L1Local > 0.06 {
			t.Errorf("%s: L1 miss rate %.3f too high (paper: ~1%%)", r.Name, r.L1Local)
		}
		if r.AMAT < 3 || r.AMAT > 4.5 {
			t.Errorf("%s: AMAT %.2f out of the hit-latency-dominated range", r.Name, r.AMAT)
		}
		if r.Overall > r.L1Local {
			t.Errorf("%s: overall %.4f exceeds L1 %.4f", r.Name, r.Overall, r.L1Local)
		}
	}
	if !strings.Contains(RenderTable2(rows), "average") {
		t.Error("rendering broken")
	}
}

func TestTable4(t *testing.T) {
	profiles := characterizeOnce(t)
	rows := Table4(profiles)
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.LoadToBranchPct < 0 || r.LoadToBranchPct > 100 {
			t.Errorf("%s: ld->br %.1f%%", r.Name, r.LoadToBranchPct)
		}
	}
	// Table 4a shape: the hmm codes lead, promlk trails.
	if byName["hmmsearch"].LoadToBranchPct <= byName["promlk"].LoadToBranchPct {
		t.Error("hmmsearch should have far more load-to-branch sequences than promlk")
	}
	if !strings.Contains(RenderTable4(rows), "ld->br") {
		t.Error("rendering broken")
	}
}

func TestTable5(t *testing.T) {
	rows, err := Table5(bio.SizeTest, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	vrow := 0
	for _, h := range rows {
		if h.Func == "vrow" {
			vrow++
		}
	}
	if vrow == 0 {
		t.Error("Table 5 should point into the P7Viterbi-analog kernel")
	}
	if !strings.Contains(RenderTable5(rows), "vrow") {
		t.Error("rendering broken")
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	rows := Table6()
	want := map[string][2]int{
		"dnapenny": {3, 10}, "hmmpfam": {16, 25}, "hmmsearch": {19, 30},
		"hmmcalibrate": {14, 25}, "predator": {1, 5}, "clustalw": {4, 10},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected program %s", r.Name)
			continue
		}
		if r.LoadsConsidered != w[0] || r.LinesInvolved != w[1] {
			t.Errorf("%s: (%d,%d), paper says (%d,%d)",
				r.Name, r.LoadsConsidered, r.LinesInvolved, w[0], w[1])
		}
	}
	if !strings.Contains(RenderTable6(rows), "static loads") {
		t.Error("rendering broken")
	}
}

func TestTable7Rendering(t *testing.T) {
	out := RenderTable7()
	for _, want := range []string{"alpha21264", "ppcg5", "pentium4", "itanium2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 7 missing %s", want)
		}
	}
}

// TestParallelMatchesSequential is the golden determinism test: a
// parallel session's rendered tables and figures are byte-identical
// to the jobs=1 sequential reference.
func TestParallelMatchesSequential(t *testing.T) {
	render := func(jobs int) string {
		s := runner.NewSession(jobs)
		profiles, err := CharacterizeSession(context.Background(), s, bio.SizeTest)
		if err != nil {
			t.Fatal(err)
		}
		fig2, err := Fig2Session(context.Background(), s, bio.SizeTest)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString(RenderFig1(Fig1(profiles)))
		b.WriteString(RenderFig2(fig2))
		b.WriteString(RenderTable2(Table2(profiles)))
		b.WriteString(RenderTable4(Table4(profiles)))
		return b.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Error("parallel session output differs from the sequential reference")
	}
}

func TestTable8AndFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	cells, err := Table8(bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6*4 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.CyclesOrig == 0 || c.CyclesTrans == 0 {
			t.Errorf("%s/%s: zero cycles", c.Program, c.Platform)
		}
	}
	rows := Fig9(cells)
	if len(rows) != 4 {
		t.Fatalf("got %d Fig9 rows", len(rows))
	}
	byPlat := map[string]Fig9Row{}
	for _, r := range rows {
		byPlat[r.Platform] = r
	}
	// Shape checks at test size (weaker than class-B, where the
	// recorded EXPERIMENTS.md run additionally shows P4 trailing the
	// other out-of-order machines): the transformation must pay off
	// on every platform overall, and hmmsearch must speed up on the
	// Alpha.
	if byPlat["alpha21264"].PerProgram["hmmsearch"] <= 0 {
		t.Errorf("hmmsearch Alpha speedup = %.3f, want positive",
			byPlat["alpha21264"].PerProgram["hmmsearch"])
	}
	for _, r := range rows {
		if r.HarmonicMean <= 0 {
			t.Errorf("%s harmonic mean %.3f, want positive", r.Platform, r.HarmonicMean)
		}
	}
	out := RenderTable8(cells) + RenderFig9(Fig9(cells))
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "hmean") {
		t.Error("rendering broken")
	}
}

// TestTable8FullGoldenAndCrossTier pins the full tier's Table 8 at
// test size to a checked-in golden (the fast tier must never perturb
// the paper-reproduction numbers) and checks the cross-tier contract:
// both tiers report the exact functional instruction count for every
// cell, because the fast tier's sampling extrapolates cycles but
// takes instruction counts from the functional run.
func TestTable8FullGoldenAndCrossTier(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	ctx := context.Background()
	s := runner.NewSession(0)
	full, err := Table8SessionFidelity(ctx, s, bio.SizeTest, pipeline.FidelityFull)
	if err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile("testdata/table8_full_test.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderTable8(full); got != string(want) {
		t.Errorf("full-tier Table 8 at test size diverged from testdata/table8_full_test.golden:\n%s", got)
	}

	fast, err := Table8SessionFidelity(ctx, s, bio.SizeTest, pipeline.FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(full) {
		t.Fatalf("fast tier returned %d cells, full %d", len(fast), len(full))
	}
	for i := range full {
		fu, fa := full[i], fast[i]
		if fu.Program != fa.Program || fu.Platform != fa.Platform {
			t.Fatalf("cell %d order mismatch: full %s/%s, fast %s/%s",
				i, fu.Program, fu.Platform, fa.Program, fa.Platform)
		}
		if fa.StatsOrig.Instructions != fu.StatsOrig.Instructions {
			t.Errorf("%s/%s original: fast tier counted %d instructions, full %d",
				fa.Program, fa.Platform, fa.StatsOrig.Instructions, fu.StatsOrig.Instructions)
		}
		if fa.StatsTrans.Instructions != fu.StatsTrans.Instructions {
			t.Errorf("%s/%s transformed: fast tier counted %d instructions, full %d",
				fa.Program, fa.Platform, fa.StatsTrans.Instructions, fu.StatsTrans.Instructions)
		}
		if fa.CyclesOrig == 0 || fa.CyclesTrans == 0 {
			t.Errorf("%s/%s: fast tier produced zero cycles", fa.Program, fa.Platform)
		}
	}
}
