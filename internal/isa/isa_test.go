package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < Op(NumOps); op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if got := Op(200).String(); !strings.HasPrefix(got, "op(") {
		t.Errorf("unknown opcode String = %q", got)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		op    Op
		class Class
		fp    bool
	}{
		{OpLdq, ClassLoad, false},
		{OpLdbu, ClassLoad, false},
		{OpLdt, ClassLoad, true},
		{OpStq, ClassStore, false},
		{OpStb, ClassStore, false},
		{OpStt, ClassStore, true},
		{OpBeq, ClassCondBranch, false},
		{OpBge, ClassCondBranch, false},
		{OpBr, ClassUncondBranch, false},
		{OpJsr, ClassUncondBranch, false},
		{OpRet, ClassUncondBranch, false},
		{OpAdd, ClassOther, false},
		{OpCmovGt, ClassOther, false},
		{OpAddt, ClassOther, true},
		{OpCmpTlt, ClassOther, true},
		{OpCvtQT, ClassOther, true},
		{OpHalt, ClassOther, false},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.class {
			t.Errorf("ClassOf(%s) = %s, want %s", c.op, got, c.class)
		}
		if got := IsFloat(c.op); got != c.fp {
			t.Errorf("IsFloat(%s) = %v, want %v", c.op, got, c.fp)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !IsLoad(OpLdbu) || IsLoad(OpStb) {
		t.Error("IsLoad misclassifies byte ops")
	}
	if !IsStore(OpStt) || IsStore(OpLdt) {
		t.Error("IsStore misclassifies FP memory ops")
	}
	if !IsBranch(OpRet) || !IsBranch(OpBne) || IsBranch(OpAdd) {
		t.Error("IsBranch wrong")
	}
	if !IsCondBranch(OpBlt) || IsCondBranch(OpBr) {
		t.Error("IsCondBranch wrong")
	}
	if !IsCmov(OpCmovEq) || !IsCmov(OpCmovGe) || IsCmov(OpAdd) || IsCmov(OpBeq) {
		t.Error("IsCmov wrong")
	}
}

func TestMemWidth(t *testing.T) {
	if MemWidth(OpLdq) != 8 || MemWidth(OpStt) != 8 || MemWidth(OpLdbu) != 1 ||
		MemWidth(OpStb) != 1 || MemWidth(OpAdd) != 0 {
		t.Error("MemWidth wrong")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAdd, Rd: 1, Ra: 2, HasImm: true, Imm: 8}, "add r1, r2, 8"},
		{Inst{Op: OpLdq, Rd: 4, Ra: 30, HasImm: true, Imm: -16}, "ldq r4, -16(r30)"},
		{Inst{Op: OpLdt, Rd: 2, Ra: 5, HasImm: true, Imm: 0}, "ldt f2, 0(r5)"},
		{Inst{Op: OpStq, Rb: 7, Ra: 30, HasImm: true, Imm: 8}, "stq r7, 8(r30)"},
		{Inst{Op: OpStt, Rb: 3, Ra: 9, HasImm: true, Imm: 24}, "stt f3, 24(r9)"},
		{Inst{Op: OpBne, Ra: 6, Target: 42}, "bne r6, 42"},
		{Inst{Op: OpBr, Target: 7}, "br 7"},
		{Inst{Op: OpJsr, Rd: 26, Target: 100}, "jsr r26, 100"},
		{Inst{Op: OpRet, Ra: 26}, "ret (r26)"},
		{Inst{Op: OpLdiq, Rd: 3, HasImm: true, Imm: 99}, "ldiq r3, 99"},
		{Inst{Op: OpLda, Rd: 3, Ra: 4, HasImm: true, Imm: 5}, "lda r3, 5(r4)"},
		{Inst{Op: OpHalt}, "halt"},
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpPrint, Ra: 9}, "print r9"},
		{Inst{Op: OpPrintF, Ra: 2}, "printf f2"},
		{Inst{Op: OpAddt, Rd: 1, Ra: 2, Rb: 3}, "addt f1, f2, f3"},
		{Inst{Op: OpCmpTlt, Rd: 4, Ra: 2, Rb: 3}, "cmptlt r4, f2, f3"},
		{Inst{Op: OpCvtQT, Rd: 1, Ra: 5}, "cvtqt f1, r5"},
		{Inst{Op: OpCvtTQ, Rd: 5, Ra: 1}, "cvttq r5, f1"},
		{Inst{Op: OpFMov, Rd: 2, Ra: 3}, "fmov f2, f3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{Insts: []Inst{{Op: OpHalt}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	badEntry := &Program{Insts: []Inst{{Op: OpHalt}}, Entry: 5}
	if err := badEntry.Validate(); err == nil {
		t.Error("entry out of range not caught")
	}
	badTarget := &Program{Insts: []Inst{{Op: OpBr, Target: 9}, {Op: OpHalt}}}
	if err := badTarget.Validate(); err == nil {
		t.Error("branch target out of range not caught")
	}
	badReg := &Program{Insts: []Inst{{Op: OpAdd, Rd: 70}, {Op: OpHalt}}}
	if err := badReg.Validate(); err == nil {
		t.Error("register out of range not caught")
	}
}

func TestSymbolLookup(t *testing.T) {
	p := &Program{
		Insts:   []Inst{{Op: OpHalt}},
		Symbols: []Symbol{{Name: "a", Addr: DataBase, Size: 64, Elem: 8}},
	}
	s, ok := p.Symbol("a")
	if !ok || s.Addr != DataBase || s.Size != 64 {
		t.Fatalf("Symbol(a) = %+v, %v", s, ok)
	}
	if _, ok := p.Symbol("missing"); ok {
		t.Error("missing symbol found")
	}
}

func TestFuncAt(t *testing.T) {
	p := &Program{
		Insts: make([]Inst, 30),
		Funcs: []FuncInfo{
			{Name: "f", Entry: 0, End: 10},
			{Name: "g", Entry: 10, End: 25},
			{Name: "h", Entry: 25, End: 30},
		},
	}
	for i := range p.Insts {
		p.Insts[i] = Inst{Op: OpNop}
	}
	cases := []struct {
		pc   int32
		want string
	}{{0, "f"}, {9, "f"}, {10, "g"}, {24, "g"}, {25, "h"}, {29, "h"}}
	for _, c := range cases {
		f := p.FuncAt(c.pc)
		if f == nil || f.Name != c.want {
			t.Errorf("FuncAt(%d) = %v, want %s", c.pc, f, c.want)
		}
	}
	if p.FuncAt(30) != nil {
		t.Error("FuncAt past end should be nil")
	}
}

func TestStaticLoads(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: OpAdd}, {Op: OpLdq}, {Op: OpStq}, {Op: OpLdbu}, {Op: OpLdt}, {Op: OpHalt},
	}}
	loads := p.StaticLoads()
	want := []int32{1, 3, 4}
	if len(loads) != len(want) {
		t.Fatalf("StaticLoads = %v, want %v", loads, want)
	}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("StaticLoads = %v, want %v", loads, want)
		}
	}
}

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Ldiq(1, 3)
	b.Branch(OpBr, 0, "skip") // forward reference
	b.Ldiq(1, 99)
	b.Label("skip")
	b.Print(1)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != 3 {
		t.Errorf("forward label resolved to %d, want 3", p.Insts[1].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Branch(OpBr, 0, "nowhere")
	b.Halt()
	if _, err := b.Program(); err == nil {
		t.Error("undefined label not reported")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Program(); err == nil {
		t.Error("duplicate label not reported")
	}
}

func TestBuilderGlobals(t *testing.T) {
	b := NewBuilder("t")
	a1 := b.Global("a", 10, 1, false) // odd size forces alignment next time
	a2 := b.Global("b", 8, 8, false)
	if a1%8 != 0 || a2%8 != 0 {
		t.Errorf("globals not 8-aligned: %#x %#x", a1, a2)
	}
	if a2 < a1+10 {
		t.Errorf("globals overlap: a=%#x..%#x b=%#x", a1, a1+10, a2)
	}
	b.Halt()
	p := b.MustProgram()
	if len(p.Symbols) != 2 {
		t.Fatalf("symbols = %d, want 2", len(p.Symbols))
	}
}

// Property: ClassOf is total and stable for all opcodes.
func TestClassTotal(t *testing.T) {
	f := func(raw uint8) bool {
		op := Op(raw % uint8(NumOps))
		c := ClassOf(op)
		return int(c) < NumClasses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
