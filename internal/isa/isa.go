// Package isa defines VRISC64, the Alpha-flavored 64-bit RISC
// instruction set executed by the functional simulator and modeled by
// the timing simulators.
//
// VRISC64 deliberately mirrors the Alpha 21264 programming model used
// by the paper: 32 integer registers with R31 hard-wired to zero, 32
// floating-point registers with F31 hard-wired to zero, compare
// instructions that produce 0/1 in an integer register, conditional
// branches that test a single register against zero, and conditional
// move (CMOV) instructions that the compiler's if-conversion pass
// emits in place of short branches.
package isa

import "fmt"

// Register conventions. The functional simulator enforces RZero and
// FZero reading as zero; writes to them are discarded.
const (
	// NumIntRegs/NumFPRegs size the architectural register files.
	// Registers 0..31 follow the Alpha-like conventions below and are
	// all any 32-register target (Alpha, PowerPC, Pentium 4 budget)
	// ever touches; registers 32..63 exist to model the Itanium 2's
	// large register file (128 architectural; we model 64) and are
	// only allocated when a platform's register budget asks for them.
	NumIntRegs = 64
	NumFPRegs  = 64

	RegV0   = 0  // integer function result
	RegA0   = 16 // first integer argument register
	RegA1   = 17
	RegA2   = 18
	RegA3   = 19
	RegA4   = 20
	RegA5   = 21
	RegRA   = 26 // return address
	RegGP   = 29 // global pointer (reserved, unused)
	RegSP   = 30 // stack pointer
	RZero   = 31 // always reads as zero
	FRegV0  = 0  // floating-point function result
	FRegA0  = 16 // first floating-point argument register
	FZero   = 31 // always reads as 0.0
	NumArgs = 6  // register arguments per class (int and fp)
)

// Op enumerates every VRISC64 opcode.
type Op uint8

const (
	// OpNop does nothing. The zero value of Inst is a NOP.
	OpNop Op = iota

	// Integer ALU, register or immediate second operand
	// (Inst.HasImm). Rd <- Ra op (Rb | Imm).
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; divide by zero traps
	OpRem // signed remainder; zero divisor traps
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpCmpEq  // Rd <- (Ra == src2) ? 1 : 0
	OpCmpLt  // signed <
	OpCmpLe  // signed <=
	OpCmpUlt // unsigned <

	// OpS8Add computes Rd <- Ra*8 + Rb (Alpha's s8addq), the array
	// indexing workhorse.
	OpS8Add

	// OpLda computes Rd <- Ra + Imm (address/constant arithmetic).
	OpLda
	// OpLdiq loads the 64-bit immediate into Rd.
	OpLdiq

	// Conditional moves: Rd <- src2 if cond(Ra) else Rd. Note Rd is
	// also a source (the timing model honors this dependence).
	OpCmovEq // if Ra == 0
	OpCmovNe // if Ra != 0
	OpCmovLt // if Ra < 0
	OpCmovLe // if Ra <= 0
	OpCmovGt // if Ra > 0
	OpCmovGe // if Ra >= 0

	// Integer memory. Effective address is Ra + Imm.
	OpLdq  // Rd <- mem64[Ra+Imm]
	OpLdbu // Rd <- zero-extended mem8[Ra+Imm]
	OpStq  // mem64[Ra+Imm] <- Rb
	OpStb  // mem8[Ra+Imm] <- low byte of Rb

	// Floating-point memory. Effective address is Ra + Imm (integer
	// base register).
	OpLdt // Fd <- mem-float64[Ra+Imm]
	OpStt // mem-float64[Ra+Imm] <- Fb

	// Floating-point ALU. Fd <- Fa op Fb.
	OpAddt
	OpSubt
	OpMult
	OpDivt
	// FP compares write 0/1 into an INTEGER register Rd so the
	// ordinary branches can test them.
	OpCmpTeq
	OpCmpTlt
	OpCmpTle
	// Conversions.
	OpCvtQT // Fd <- float64(Ra)
	OpCvtTQ // Rd <- int64(Fa), truncating toward zero
	// FP register move / negate.
	OpFMov // Fd <- Fa
	OpFNeg // Fd <- -Fa

	// Control transfer. Target is an absolute instruction index.
	OpBr  // unconditional PC-relative branch to Target
	OpBeq // branch to Target if Ra == 0
	OpBne // if Ra != 0
	OpBlt // if Ra < 0
	OpBle // if Ra <= 0
	OpBgt // if Ra > 0
	OpBge // if Ra >= 0
	OpJsr // Rd <- return PC; jump to Target (direct call)
	OpRet // jump to address in Ra (returns; also indirect jumps)

	// Environment.
	OpPrint  // print integer Ra (captured by the simulator)
	OpPrintF // print float Fa
	OpHalt   // stop execution

	numOps
)

// NumOps is the number of defined opcodes (useful for table sizing).
const NumOps = int(numOps)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpSll: "sll", OpSrl: "srl", OpSra: "sra",
	OpCmpEq: "cmpeq", OpCmpLt: "cmplt", OpCmpLe: "cmple",
	OpCmpUlt: "cmpult", OpS8Add: "s8addq", OpLda: "lda", OpLdiq: "ldiq",
	OpCmovEq: "cmoveq", OpCmovNe: "cmovne", OpCmovLt: "cmovlt",
	OpCmovLe: "cmovle", OpCmovGt: "cmovgt", OpCmovGe: "cmovge",
	OpLdq: "ldq", OpLdbu: "ldbu", OpStq: "stq", OpStb: "stb",
	OpLdt: "ldt", OpStt: "stt", OpAddt: "addt", OpSubt: "subt",
	OpMult: "mult", OpDivt: "divt", OpCmpTeq: "cmpteq",
	OpCmpTlt: "cmptlt", OpCmpTle: "cmptle", OpCvtQT: "cvtqt",
	OpCvtTQ: "cvttq", OpFMov: "fmov", OpFNeg: "fneg",
	OpBr: "br", OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpBle: "ble", OpBgt: "bgt", OpBge: "bge", OpJsr: "jsr",
	OpRet: "ret", OpPrint: "print", OpPrintF: "printf",
	OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class is the coarse instruction category used by the paper's
// characterization (Figure 1 groups instructions into loads, stores,
// conditional branches, and other).
type Class uint8

const (
	ClassOther Class = iota
	ClassLoad
	ClassStore
	ClassCondBranch
	ClassUncondBranch // BR/JSR/RET: control but unconditional
	numClasses
)

// NumClasses is the number of instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ClassOther: "other", ClassLoad: "load", ClassStore: "store",
	ClassCondBranch: "cond-branch", ClassUncondBranch: "uncond-branch",
}

func (c Class) String() string { return classNames[c] }

var opClass [numOps]Class

var opFloat [numOps]bool

func init() {
	for _, o := range []Op{OpLdq, OpLdbu, OpLdt} {
		opClass[o] = ClassLoad
	}
	for _, o := range []Op{OpStq, OpStb, OpStt} {
		opClass[o] = ClassStore
	}
	for _, o := range []Op{OpBeq, OpBne, OpBlt, OpBle, OpBgt, OpBge} {
		opClass[o] = ClassCondBranch
	}
	for _, o := range []Op{OpBr, OpJsr, OpRet} {
		opClass[o] = ClassUncondBranch
	}
	for _, o := range []Op{
		OpLdt, OpStt, OpAddt, OpSubt, OpMult, OpDivt,
		OpCmpTeq, OpCmpTlt, OpCmpTle, OpCvtQT, OpCvtTQ, OpFMov,
		OpFNeg, OpPrintF,
	} {
		opFloat[o] = true
	}
}

// ClassOf returns the instruction class of op.
func ClassOf(op Op) Class { return opClass[op] }

// IsLoad reports whether op reads data memory.
func IsLoad(op Op) bool { return opClass[op] == ClassLoad }

// IsStore reports whether op writes data memory.
func IsStore(op Op) bool { return opClass[op] == ClassStore }

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool { return opClass[op] == ClassCondBranch }

// IsBranch reports whether op transfers control (conditionally or not).
func IsBranch(op Op) bool {
	c := opClass[op]
	return c == ClassCondBranch || c == ClassUncondBranch
}

// IsFloat reports whether op is a floating-point instruction (the
// paper's Table 1 reports the FP fraction; FP loads count as both
// loads and FP instructions there).
func IsFloat(op Op) bool { return opFloat[op] }

// IsCmov reports whether op is a conditional move.
func IsCmov(op Op) bool { return op >= OpCmovEq && op <= OpCmovGe }

// SrcPos identifies the source location an instruction was compiled
// from. File and Func index into the Program's tables; Line is the
// 1-based source line (0 when unknown, e.g. hand-assembled code).
type SrcPos struct {
	File int32
	Func int32
	Line int32
}

// Inst is one VRISC64 instruction.
//
// Field usage by format:
//
//	ALU reg:  Rd <- Ra op Rb
//	ALU imm:  Rd <- Ra op Imm            (HasImm)
//	LDA:      Rd <- Ra + Imm
//	LDIQ:     Rd <- Imm
//	CMOVxx:   Rd <- (cond Ra) ? Rb : Rd
//	Load:     Rd <- mem[Ra + Imm]
//	Store:    mem[Ra + Imm] <- Rb
//	Branch:   if cond(Ra) goto Target
//	JSR:      Rd <- pc+1; goto Target
//	RET:      goto Ra
//
// FP instructions use the same fields; register numbers then refer to
// the FP register file, except the base register of LDT/STT and the
// destination of CMPT*/CVTTQ (integer) and the source of CVTQT
// (integer).
type Inst struct {
	Op     Op
	Rd     uint8
	Ra     uint8
	Rb     uint8
	HasImm bool
	Imm    int64
	Target int32 // absolute instruction index for BR/Bxx/JSR
	Pos    SrcPos
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return in.Op.String()
	case in.Op == OpLdiq:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case in.Op == OpLda:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Ra)
	case IsLoad(in.Op):
		return fmt.Sprintf("%s %s%d, %d(r%d)", in.Op, destPrefix(in.Op), in.Rd, in.Imm, in.Ra)
	case IsStore(in.Op):
		p := "r"
		if in.Op == OpStt {
			p = "f"
		}
		return fmt.Sprintf("%s %s%d, %d(r%d)", in.Op, p, in.Rb, in.Imm, in.Ra)
	case in.Op == OpBr:
		return fmt.Sprintf("br %d", in.Target)
	case IsCondBranch(in.Op):
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Ra, in.Target)
	case in.Op == OpJsr:
		return fmt.Sprintf("jsr r%d, %d", in.Rd, in.Target)
	case in.Op == OpRet:
		return fmt.Sprintf("ret (r%d)", in.Ra)
	case in.Op == OpPrint:
		return fmt.Sprintf("print r%d", in.Ra)
	case in.Op == OpPrintF:
		return fmt.Sprintf("printf f%d", in.Ra)
	case in.Op == OpCvtQT:
		return fmt.Sprintf("cvtqt f%d, r%d", in.Rd, in.Ra)
	case in.Op == OpCvtTQ:
		return fmt.Sprintf("cvttq r%d, f%d", in.Rd, in.Ra)
	case in.Op == OpFMov || in.Op == OpFNeg:
		return fmt.Sprintf("%s f%d, f%d", in.Op, in.Rd, in.Ra)
	case IsFloat(in.Op) && !isFPCmp(in.Op):
		return fmt.Sprintf("%s f%d, f%d, f%d", in.Op, in.Rd, in.Ra, in.Rb)
	case isFPCmp(in.Op):
		return fmt.Sprintf("%s r%d, f%d, f%d", in.Op, in.Rd, in.Ra, in.Rb)
	case in.HasImm:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Ra, in.Rb)
	}
}

func destPrefix(op Op) string {
	if op == OpLdt {
		return "f"
	}
	return "r"
}

func isFPCmp(op Op) bool {
	return op == OpCmpTeq || op == OpCmpTlt || op == OpCmpTle
}

// MemWidth returns the access width in bytes for memory instructions
// and 0 for all others.
func MemWidth(op Op) int {
	switch op {
	case OpLdq, OpStq, OpLdt, OpStt:
		return 8
	case OpLdbu, OpStb:
		return 1
	}
	return 0
}
