package isa

import (
	"fmt"
	"sort"
	"sync"
)

// Memory layout constants shared by the compiler, loader, and
// simulator. Globals live in a data segment; the stack grows down from
// StackTop. There is no heap: MiniC programs allocate statically, like
// the paper's kernels allocate their DP arrays once.
const (
	DataBase  = 0x0001_0000
	StackTop  = 0x7FFF_0000
	StackSize = 0x0040_0000 // 4 MiB of simulated stack
)

// Symbol describes one global object in the data segment.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64 // bytes
	Elem int    // element size in bytes (1, or 8)
	IsFP bool   // elements are float64
}

// FuncInfo describes one compiled function for profiling reports.
type FuncInfo struct {
	Name  string
	Entry int32 // first instruction index
	End   int32 // one past the last instruction index
}

// Program is a loadable VRISC64 executable image plus the metadata the
// characterization framework needs: symbol table, function table,
// source file names, and static data initializers.
type Program struct {
	Name    string
	Insts   []Inst
	Entry   int32 // index of the first instruction to execute
	DataEnd uint64

	Files   []string // file table indexed by SrcPos.File
	Funcs   []FuncInfo
	Symbols []Symbol

	// Init holds static initial values for the data segment,
	// applied by the loader before execution.
	Init []DataInit

	symOnce  sync.Once
	symIndex map[string]int
}

// DataInit is a chunk of initialized data.
type DataInit struct {
	Addr  uint64
	Bytes []byte
}

// Symbol returns the named global, or false when absent. The lazy
// index is built under a sync.Once: a compiled Program is immutable
// and may be shared by machines running on several goroutines.
func (p *Program) Symbol(name string) (Symbol, bool) {
	p.symOnce.Do(func() {
		p.symIndex = make(map[string]int, len(p.Symbols))
		for i, s := range p.Symbols {
			p.symIndex[s.Name] = i
		}
	})
	i, ok := p.symIndex[name]
	if !ok {
		return Symbol{}, false
	}
	return p.Symbols[i], true
}

// FuncAt returns the function containing instruction index pc, or nil.
func (p *Program) FuncAt(pc int32) *FuncInfo {
	i := sort.Search(len(p.Funcs), func(i int) bool {
		return p.Funcs[i].End > pc
	})
	if i < len(p.Funcs) && p.Funcs[i].Entry <= pc && pc < p.Funcs[i].End {
		return &p.Funcs[i]
	}
	return nil
}

// FileName returns the file table entry for idx, or "?".
func (p *Program) FileName(idx int32) string {
	if idx >= 0 && int(idx) < len(p.Files) {
		return p.Files[idx]
	}
	return "?"
}

// PosString formats a source position as file:line.
func (p *Program) PosString(pos SrcPos) string {
	if pos.Line == 0 {
		return "?"
	}
	return fmt.Sprintf("%s:%d", p.FileName(pos.File), pos.Line)
}

// StaticLoads returns the instruction indices of every static load in
// the program, in program order.
func (p *Program) StaticLoads() []int32 {
	var out []int32
	for i := range p.Insts {
		if IsLoad(p.Insts[i].Op) {
			out = append(out, int32(i))
		}
	}
	return out
}

// Validate checks structural invariants: branch targets in range,
// register numbers in range, HALT reachable as the last resort.
func (p *Program) Validate() error {
	n := int32(len(p.Insts))
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("isa: entry %d out of range [0,%d)", p.Entry, n)
	}
	for i, in := range p.Insts {
		if in.Rd >= NumIntRegs || in.Ra >= NumIntRegs || in.Rb >= NumIntRegs {
			return fmt.Errorf("isa: inst %d (%s): register out of range", i, in)
		}
		switch {
		case in.Op == OpBr || IsCondBranch(in.Op) || in.Op == OpJsr:
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("isa: inst %d (%s): target %d out of range", i, in, in.Target)
			}
		case in.Op >= numOps:
			return fmt.Errorf("isa: inst %d: bad opcode %d", i, in.Op)
		}
	}
	return nil
}
