package isa

import "fmt"

// Builder assembles VRISC64 programs by hand, mainly for tests and
// microbenchmark kernels. It supports forward label references.
type Builder struct {
	name    string
	insts   []Inst
	labels  map[string]int32
	fixups  map[string][]int32 // label -> instruction indices needing Target
	symbols []Symbol
	nextAdr uint64
	inits   []DataInit
	errs    []error
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int32),
		fixups:  make(map[string][]int32),
		nextAdr: DataBase,
	}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = int32(len(b.insts))
}

// Global reserves size bytes in the data segment and returns the
// symbol's base address.
func (b *Builder) Global(name string, size uint64, elem int, isFP bool) uint64 {
	addr := (b.nextAdr + 7) &^ 7
	b.symbols = append(b.symbols, Symbol{Name: name, Addr: addr, Size: size, Elem: elem, IsFP: isFP})
	b.nextAdr = addr + size
	return addr
}

// InitData registers initial bytes at addr.
func (b *Builder) InitData(addr uint64, data []byte) {
	b.inits = append(b.inits, DataInit{Addr: addr, Bytes: data})
}

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(in Inst) int32 {
	b.insts = append(b.insts, in)
	return int32(len(b.insts) - 1)
}

// Op3 emits a three-register ALU instruction.
func (b *Builder) Op3(op Op, rd, ra, rb uint8) { b.Emit(Inst{Op: op, Rd: rd, Ra: ra, Rb: rb}) }

// OpI emits an ALU instruction with an immediate second operand.
func (b *Builder) OpI(op Op, rd, ra uint8, imm int64) {
	b.Emit(Inst{Op: op, Rd: rd, Ra: ra, HasImm: true, Imm: imm})
}

// Ldiq emits a load-immediate.
func (b *Builder) Ldiq(rd uint8, imm int64) { b.Emit(Inst{Op: OpLdiq, Rd: rd, HasImm: true, Imm: imm}) }

// Load emits a load: rd <- mem[ra+off].
func (b *Builder) Load(op Op, rd, ra uint8, off int64) {
	b.Emit(Inst{Op: op, Rd: rd, Ra: ra, HasImm: true, Imm: off})
}

// Store emits a store: mem[ra+off] <- rb.
func (b *Builder) Store(op Op, rb, ra uint8, off int64) {
	b.Emit(Inst{Op: op, Rb: rb, Ra: ra, HasImm: true, Imm: off})
}

// Branch emits a branch to the (possibly forward) label.
func (b *Builder) Branch(op Op, ra uint8, label string) {
	idx := b.Emit(Inst{Op: op, Ra: ra, Target: -1})
	if t, ok := b.labels[label]; ok {
		b.insts[idx].Target = t
	} else {
		b.fixups[label] = append(b.fixups[label], idx)
	}
}

// Jsr emits a call to label, saving the return PC in rd.
func (b *Builder) Jsr(rd uint8, label string) {
	idx := b.Emit(Inst{Op: OpJsr, Rd: rd, Target: -1})
	if t, ok := b.labels[label]; ok {
		b.insts[idx].Target = t
	} else {
		b.fixups[label] = append(b.fixups[label], idx)
	}
}

// Ret emits an indirect jump through ra.
func (b *Builder) Ret(ra uint8) { b.Emit(Inst{Op: OpRet, Ra: ra}) }

// Print emits a PRINT of integer register ra.
func (b *Builder) Print(ra uint8) { b.Emit(Inst{Op: OpPrint, Ra: ra}) }

// Halt emits a HALT.
func (b *Builder) Halt() { b.Emit(Inst{Op: OpHalt}) }

// Program resolves labels and returns the finished program.
func (b *Builder) Program() (*Program, error) {
	for label, idxs := range b.fixups {
		t, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", label)
		}
		for _, i := range idxs {
			b.insts[i].Target = t
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{
		Name:    b.name,
		Insts:   b.insts,
		Entry:   0,
		DataEnd: b.nextAdr,
		Files:   []string{b.name + ".s"},
		Symbols: b.symbols,
		Init:    b.inits,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program, panicking on error (test helper).
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
