package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// writeArtifact serves body with honest transfer headers.
func writeArtifact(w http.ResponseWriter, body []byte) {
	sum := sha256.Sum256(body)
	w.Header().Set(HeaderSHA256, hex.EncodeToString(sum[:]))
	w.Header().Set(HeaderCRC32, strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10))
	w.Write(body)
}

func fastClient() *Client {
	return NewClient(ClientConfig{
		Timeout: 2 * time.Second, Retries: 1, Backoff: time.Millisecond,
		FailureThreshold: 3, Cooloff: 50 * time.Millisecond,
	})
}

func TestFetchSnapshotRoundTrip(t *testing.T) {
	payload := []byte("the artifact payload")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// r.URL.Path arrives decoded; the wire form is the escaped
		// SnapshotPath.
		if r.URL.Path != "/v1/snapshots/prof|abc|classB" {
			t.Errorf("unexpected path %q", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		writeArtifact(w, payload)
	}))
	defer ts.Close()

	c := fastClient()
	got, err := c.FetchSnapshot(context.Background(), ts.URL, "prof|abc|classB")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("got %q want %q", got, payload)
	}
	if !c.Available(ts.URL) {
		t.Fatal("healthy peer marked unavailable")
	}
}

func TestFetchNotFoundIsAuthoritative(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()
	c := fastClient()
	_, err := c.FetchSnapshot(context.Background(), ts.URL, "missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 retried: %d calls", calls.Load())
	}
	if !c.Available(ts.URL) {
		t.Fatal("a 404 is not a peer failure")
	}
}

// TestFetchCorruptionRejected covers the satellite's three corruption
// shapes: a bit-flipped body, a truncated body, and a wrong-hash
// response. None may be returned to the caller, and none may retry
// (the same corrupt bytes would come back).
func TestFetchCorruptionRejected(t *testing.T) {
	payload := []byte("characterization snapshot bytes, long enough to truncate meaningfully")
	honest := func(body []byte) http.Header {
		h := make(http.Header)
		sum := sha256.Sum256(body)
		h.Set(HeaderSHA256, hex.EncodeToString(sum[:]))
		h.Set(HeaderCRC32, strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10))
		return h
	}
	cases := []struct {
		name  string
		serve func(w http.ResponseWriter)
	}{
		{"bit-flipped body", func(w http.ResponseWriter) {
			flipped := append([]byte(nil), payload...)
			flipped[7] ^= 0x20
			for k, v := range honest(payload) {
				w.Header()[k] = v
			}
			w.Write(flipped)
		}},
		{"truncated body", func(w http.ResponseWriter) {
			for k, v := range honest(payload) {
				w.Header()[k] = v
			}
			w.Write(payload[:len(payload)/2])
		}},
		{"wrong-hash headers", func(w http.ResponseWriter) {
			for k, v := range honest([]byte("some other artifact entirely")) {
				w.Header()[k] = v
			}
			w.Write(payload)
		}},
		{"missing headers", func(w http.ResponseWriter) {
			w.Write(payload)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				tc.serve(w)
			}))
			defer ts.Close()
			c := fastClient()
			_, err := c.FetchSnapshot(context.Background(), ts.URL, "k")
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			if calls.Load() != 1 {
				t.Fatalf("corrupt response retried: %d calls", calls.Load())
			}
		})
	}
}

// TestFetchObjectHashAddressed: an object fetch must also match the
// hash that addressed it, even when the peer's headers are internally
// consistent.
func TestFetchObjectHashAddressed(t *testing.T) {
	payload := []byte("object content")
	sum := sha256.Sum256(payload)
	right := hex.EncodeToString(sum[:])
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeArtifact(w, payload)
	}))
	defer ts.Close()
	c := fastClient()
	if _, err := c.FetchObject(context.Background(), ts.URL, right); err != nil {
		t.Fatalf("matching hash rejected: %v", err)
	}
	wrong := "ab" + right[2:]
	if _, err := c.FetchObject(context.Background(), ts.URL, wrong); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hash mismatch: got %v, want ErrCorrupt", err)
	}
}

func TestFetchRetriesTransient5xx(t *testing.T) {
	payload := []byte("eventually fine")
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "busy", http.StatusInternalServerError)
			return
		}
		writeArtifact(w, payload)
	}))
	defer ts.Close()
	c := fastClient()
	got, err := c.FetchSnapshot(context.Background(), ts.URL, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) || calls.Load() != 2 {
		t.Fatalf("retry did not recover: body=%q calls=%d", got, calls.Load())
	}
}

// TestHealthMarking: enough consecutive failures mark the peer down;
// while down it is unavailable; after the cooloff it becomes eligible
// again, and one success resets the count.
func TestHealthMarking(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient(ClientConfig{
		Timeout: time.Second, Retries: -1, Backoff: time.Millisecond,
		FailureThreshold: 2, Cooloff: time.Hour,
	})
	base := time.Now()
	c.now = func() time.Time { return base }

	c.FetchSnapshot(context.Background(), ts.URL, "k") // failure 1
	if !c.Available(ts.URL) {
		t.Fatal("one failure should not mark the peer down")
	}
	c.FetchSnapshot(context.Background(), ts.URL, "k") // failure 2: threshold
	if c.Available(ts.URL) {
		t.Fatal("peer should be down after hitting the threshold")
	}
	// Cooloff expiry re-enables probing.
	c.now = func() time.Time { return base.Add(2 * time.Hour) }
	if !c.Available(ts.URL) {
		t.Fatal("cooloff expired, peer should be probe-eligible")
	}
	st := c.Peers()
	if len(st) != 1 || st[0].Failures < 2 {
		t.Fatalf("health snapshot wrong: %+v", st)
	}
	c.markSuccess(ts.URL)
	if got := c.Peers(); len(got) != 0 {
		t.Fatalf("success should reset health state, got %+v", got)
	}
}

func TestPushSnapshot(t *testing.T) {
	var gotBody []byte
	var gotHash string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			t.Errorf("method %s", r.Method)
		}
		gotHash = r.Header.Get(HeaderSHA256)
		buf := make([]byte, r.ContentLength)
		io := r.Body
		n, _ := io.Read(buf)
		gotBody = buf[:n]
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	c := fastClient()
	data := []byte("replicated snapshot")
	if err := c.PushSnapshot(context.Background(), ts.URL, "prof|fp|classB", data); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if gotHash != hex.EncodeToString(sum[:]) {
		t.Fatalf("push hash header %q", gotHash)
	}
	if string(gotBody) != string(data) {
		t.Fatalf("push body %q", gotBody)
	}
}

func TestFetchSkipsDownPeer(t *testing.T) {
	// A cluster whose first candidate is marked down must go straight
	// to the second.
	payload := []byte("served by the healthy peer")
	var downCalls atomic.Int64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		downCalls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer down.Close()
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeArtifact(w, payload)
	}))
	defer up.Close()

	cl := New(Config{
		Self:     "http://self.invalid",
		Peers:    []string{down.URL, up.URL},
		Replicas: 2,
		Client: ClientConfig{
			Timeout: time.Second, Retries: -1, Backoff: time.Millisecond,
			FailureThreshold: 1, Cooloff: time.Hour,
		},
	})
	// First fetch trips the down peer's threshold (order of candidates
	// may put either first; force the failure directly).
	cl.client.markFailure(down.URL)
	got, ok := cl.Fetch(context.Background(), "some|key", nil)
	if !ok || string(got) != string(payload) {
		t.Fatalf("fetch failed: ok=%v body=%q", ok, got)
	}
	if downCalls.Load() != 0 {
		t.Fatalf("down peer was contacted %d times", downCalls.Load())
	}
}

func TestClusterFetchFallsToNextReplica(t *testing.T) {
	payload := []byte(fmt.Sprintf("good artifact %d", 42))
	// Two peers behind swappable handlers: after the ring decides the
	// candidate order, the FIRST candidate is made to serve a
	// transfer-consistent but semantically wrong artifact (empty body,
	// honest headers) that only the caller's verify callback catches —
	// so the fallback to the next replica is always exercised.
	handlers := make(map[string]func(w http.ResponseWriter))
	var mu sync.Mutex
	mk := func() *httptest.Server {
		var ts *httptest.Server
		ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			h := handlers[ts.URL]
			mu.Unlock()
			h(w)
		}))
		return ts
	}
	p1, p2 := mk(), mk()
	defer p1.Close()
	defer p2.Close()

	cl := New(Config{
		Self:     "http://self.invalid",
		Peers:    []string{p1.URL, p2.URL},
		Replicas: 2,
		Client:   ClientConfig{Timeout: time.Second, Retries: -1, Backoff: time.Millisecond},
	})
	order := cl.fetchCandidates("k")
	if len(order) != 2 {
		t.Fatalf("candidates: %v", order)
	}
	mu.Lock()
	handlers[order[0]] = func(w http.ResponseWriter) { writeArtifact(w, nil) }
	handlers[order[1]] = func(w http.ResponseWriter) { writeArtifact(w, payload) }
	mu.Unlock()

	got, ok := cl.Fetch(context.Background(), "k", func(b []byte) error {
		if len(b) == 0 {
			return errors.New("empty artifact")
		}
		return nil
	})
	if !ok || string(got) != string(payload) {
		t.Fatalf("fetch did not fall through to good replica: ok=%v body=%q", ok, got)
	}
	st := cl.Stats()
	if st.FetchHits != 1 || st.FetchCorrupt != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReplicateFanOut(t *testing.T) {
	var a, b atomic.Int64
	mk := func(n *atomic.Int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPut {
				n.Add(1)
			}
			w.WriteHeader(http.StatusNoContent)
		}))
	}
	pa, pb := mk(&a), mk(&b)
	defer pa.Close()
	defer pb.Close()

	cl := New(Config{
		Self:     "http://self.invalid",
		Peers:    []string{pa.URL, pb.URL},
		Replicas: 2, // replica set == whole 3-node ring
		Client:   ClientConfig{Timeout: time.Second, Retries: -1, Backoff: time.Millisecond},
	})
	cl.Replicate("prof|fp|classB", []byte("snapshot"))
	cl.Quiesce()
	if a.Load()+b.Load() != 2 {
		t.Fatalf("expected pushes to both peers, got a=%d b=%d", a.Load(), b.Load())
	}
	if st := cl.Stats(); st.Replicated != 2 {
		t.Fatalf("stats: %+v", st)
	}
}
