package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("characterize|prog%03d|classB|hot=6", i)
	}
	return keys
}

// TestLookupBasics pins the contract: the right count, distinct
// members, primary == Lookup(1), and n beyond the membership clamps.
func TestLookupBasics(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(nodes, 0)
	for _, key := range testKeys(50) {
		got := r.Lookup(key, 2)
		if len(got) != 2 {
			t.Fatalf("Lookup(%q, 2) returned %d nodes", key, len(got))
		}
		if got[0] == got[1] {
			t.Fatalf("Lookup(%q, 2) repeated node %s", key, got[0])
		}
		if p := r.Primary(key); p != got[0] {
			t.Fatalf("Primary(%q) = %s, Lookup[0] = %s", key, p, got[0])
		}
		if all := r.Lookup(key, 10); len(all) != len(nodes) {
			t.Fatalf("Lookup(%q, 10) = %d nodes, want %d", key, len(all), len(nodes))
		}
	}
	if r.Lookup("k", 0) != nil {
		t.Fatal("Lookup(k, 0) should be nil")
	}
	if NewRing(nil, 0).Primary("k") != "" {
		t.Fatal("empty ring Primary should be empty")
	}
}

// TestRingBalance checks vnode spreading: on a 3-node ring no member
// should own a wildly disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	keys := testKeys(3000)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	for node, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys — ring badly unbalanced: %v",
				node, 100*frac, counts)
		}
	}
}

// TestAddNodeMovesBoundedFraction pins consistent hashing's defining
// property: growing a 3-node ring to 4 reassigns roughly 1/4 of the
// keys (those the new node claims) and nothing else.
func TestAddNodeMovesBoundedFraction(t *testing.T) {
	base := []string{"http://a:1", "http://b:1", "http://c:1"}
	grown := append(append([]string(nil), base...), "http://d:1")
	r3, r4 := NewRing(base, 0), NewRing(grown, 0)
	keys := testKeys(3000)
	moved := 0
	for _, k := range keys {
		before, after := r3.Primary(k), r4.Primary(k)
		if before == after {
			continue
		}
		moved++
		if after != "http://d:1" {
			t.Fatalf("key %q moved %s -> %s, but only the new node may claim keys",
				k, before, after)
		}
	}
	// Expect ~1/4; allow generous slack for vnode placement variance.
	if frac := float64(moved) / float64(len(keys)); frac > 0.40 {
		t.Fatalf("adding a 4th node moved %.1f%% of keys, want ~25%%", 100*frac)
	} else if frac < 0.10 {
		t.Fatalf("adding a 4th node moved only %.1f%% of keys — new node underloaded", 100*frac)
	}
}

// TestRemoveNodeReassignsOnlyItsKeys: shrinking the ring must leave
// every key whose primary survives exactly where it was.
func TestRemoveNodeReassignsOnlyItsKeys(t *testing.T) {
	full := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	shrunk := full[:3] // drop d
	r4, r3 := NewRing(full, 0), NewRing(shrunk, 0)
	for _, k := range testKeys(3000) {
		before, after := r4.Primary(k), r3.Primary(k)
		if before == "http://d:1" {
			if after == "http://d:1" {
				t.Fatalf("key %q still assigned to removed node", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though its primary was not removed",
				k, before, after)
		}
	}
}

// TestLookupDeterministicAcrossOrderings is the property test from the
// issue: a ring built from any permutation (and any duplication) of
// the same node list answers every lookup identically.
func TestLookupDeterministicAcrossOrderings(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	ref := NewRing(nodes, 0)
	keys := testKeys(200)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if trial%3 == 0 {
			shuffled = append(shuffled, shuffled[rng.Intn(len(shuffled))]) // duplicate
		}
		r := NewRing(shuffled, 0)
		for _, k := range keys {
			want := ref.Lookup(k, 3)
			got := r.Lookup(k, 3)
			if len(want) != len(got) {
				t.Fatalf("trial %d key %q: %v vs %v", trial, k, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d key %q: lookup differs by ordering: %v vs %v",
						trial, k, got, want)
				}
			}
		}
	}
}
