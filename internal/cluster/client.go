package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// Artifact transfer headers. Every peer response (and replication
// push) carries the content's SHA-256 and CRC32 so the receiver can
// verify the body before trusting it; the store recomputes both again
// on admission. A peer whose headers disagree with its body — bit
// flips, truncation, or a lying peer — is treated as corrupt.
const (
	HeaderSHA256 = "X-Bioperf-Sha256"
	HeaderCRC32  = "X-Bioperf-Crc32"
)

// ErrNotFound reports a peer that answered authoritatively that it
// does not hold the artifact. It is not a peer failure: the peer is
// healthy, it just never computed this key.
var ErrNotFound = errors.New("cluster: artifact not found on peer")

// ErrCorrupt reports a response whose body failed verification
// against its own headers (or against the requested object hash).
// Corrupt responses are never retried on the same peer — the caller
// moves to the next replica.
var ErrCorrupt = errors.New("cluster: peer response failed verification")

// ClientConfig tunes the peer client.
type ClientConfig struct {
	// Timeout bounds one HTTP attempt against one peer. Default 5s.
	Timeout time.Duration
	// Retries is the number of additional attempts after a transport
	// or 5xx failure (404 and verification failures never retry).
	// Default 1.
	Retries int
	// Backoff is the delay before the first retry, doubling per
	// attempt. Default 50ms.
	Backoff time.Duration
	// FailureThreshold marks a peer down after this many consecutive
	// failed operations. Default 3.
	FailureThreshold int
	// Cooloff is how long a down peer is skipped before being probed
	// again. Default 10s.
	Cooloff time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooloff <= 0 {
		c.Cooloff = 10 * time.Second
	}
	return c
}

// peerHealth is one peer's failure-marking view: consecutive failures
// and, once the threshold trips, the time the peer becomes eligible
// for another probe.
type peerHealth struct {
	failures  int
	downUntil time.Time
}

// PeerState is one peer's health snapshot for /healthz and tests.
type PeerState struct {
	Peer      string `json:"peer"`
	Failures  int    `json:"consecutive_failures"`
	Available bool   `json:"available"`
}

// Client is the peer-to-peer HTTP client: bounded per-peer timeout,
// limited retry with exponential backoff, body verification against
// the transfer headers, and a health view that stops hammering a
// down peer. Safe for concurrent use.
type Client struct {
	cfg ClientConfig
	hc  *http.Client
	now func() time.Time // injectable for cooloff tests

	mu     sync.Mutex
	health map[string]*peerHealth
}

// NewClient creates a peer client.
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:    cfg,
		hc:     &http.Client{Timeout: cfg.Timeout},
		now:    time.Now,
		health: make(map[string]*peerHealth),
	}
}

// Available reports whether the peer is currently eligible for
// requests (not marked down, or its cooloff has expired).
func (c *Client) Available(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[peer]
	return h == nil || h.failures < c.cfg.FailureThreshold || !c.now().Before(h.downUntil)
}

// Peers returns the health snapshot of every peer the client has
// talked to, in no particular order.
func (c *Client) Peers() []PeerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PeerState, 0, len(c.health))
	for p, h := range c.health {
		out = append(out, PeerState{
			Peer:      p,
			Failures:  h.failures,
			Available: h.failures < c.cfg.FailureThreshold || !c.now().Before(h.downUntil),
		})
	}
	return out
}

func (c *Client) markSuccess(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.health, peer)
}

func (c *Client) markFailure(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[peer]
	if h == nil {
		h = &peerHealth{}
		c.health[peer] = h
	}
	h.failures++
	if h.failures >= c.cfg.FailureThreshold {
		h.downUntil = c.now().Add(c.cfg.Cooloff)
	}
}

// SnapshotPath returns the URL path serving the store key (the key is
// escaped so '|' and '/' survive routing).
func SnapshotPath(key string) string { return "/v1/snapshots/" + url.PathEscape(key) }

// ObjectPath returns the URL path serving a raw object by hash.
func ObjectPath(hash string) string { return "/v1/objects/" + url.PathEscape(hash) }

// FetchSnapshot retrieves the artifact stored under key on peer,
// verifying the body against the response's hash and CRC headers.
// ErrNotFound means the peer is healthy but lacks the key; ErrCorrupt
// means the body failed verification.
func (c *Client) FetchSnapshot(ctx context.Context, peer, key string) ([]byte, error) {
	return c.fetch(ctx, peer, SnapshotPath(key), "")
}

// FetchObject retrieves the raw object with the given content hash
// from peer. On top of header verification, the body's SHA-256 must
// equal the hash that addressed it.
func (c *Client) FetchObject(ctx context.Context, peer, hash string) ([]byte, error) {
	return c.fetch(ctx, peer, ObjectPath(hash), hash)
}

func (c *Client) fetch(ctx context.Context, peer, path, wantHash string) ([]byte, error) {
	var lastErr error
	backoff := c.cfg.Backoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		data, retryable, err := c.fetchOnce(ctx, peer, path, wantHash)
		if err == nil {
			c.markSuccess(peer)
			return data, nil
		}
		if errors.Is(err, ErrNotFound) {
			// Authoritative miss: the peer is fine, stop here.
			c.markSuccess(peer)
			return nil, err
		}
		c.markFailure(peer)
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// fetchOnce performs one GET and full verification. retryable reports
// whether another attempt against the same peer could help (transport
// errors and 5xx: yes; corruption: no — same bytes would come back).
func (c *Client) fetchOnce(ctx context.Context, peer, path, wantHash string) (data []byte, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+path, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, ErrNotFound
	case resp.StatusCode != http.StatusOK:
		return nil, resp.StatusCode >= 500, fmt.Errorf("cluster: peer %s: HTTP %d", peer, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, fmt.Errorf("cluster: peer %s: read body: %w", peer, err)
	}
	if err := verifyBody(body, resp.Header, wantHash); err != nil {
		return nil, false, err
	}
	return body, false, nil
}

// verifyBody checks the body against the transfer headers (and, when
// the request was hash-addressed, against that hash). Missing headers
// are corruption too: an honest bioperfd peer always sends them.
func verifyBody(body []byte, h http.Header, wantHash string) error {
	sum := sha256.Sum256(body)
	gotHash := hex.EncodeToString(sum[:])
	hdrHash := h.Get(HeaderSHA256)
	if hdrHash == "" || gotHash != hdrHash {
		return fmt.Errorf("%w: sha256 %s, header %q", ErrCorrupt, gotHash, hdrHash)
	}
	if wantHash != "" && gotHash != wantHash {
		return fmt.Errorf("%w: object hash %s, requested %s", ErrCorrupt, gotHash, wantHash)
	}
	hdrCRC := h.Get(HeaderCRC32)
	crc, err := strconv.ParseUint(hdrCRC, 10, 32)
	if err != nil {
		return fmt.Errorf("%w: bad CRC header %q", ErrCorrupt, hdrCRC)
	}
	if crc32.ChecksumIEEE(body) != uint32(crc) {
		return fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return nil
}

// PushSnapshot replicates an artifact to peer under key (write-through
// replication of a freshly computed snapshot). The receiver verifies
// the body against the headers before admitting it.
func (c *Client) PushSnapshot(ctx context.Context, peer, key string, data []byte) error {
	var lastErr error
	backoff := c.cfg.Backoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		retryable, err := c.pushOnce(ctx, peer, key, data)
		if err == nil {
			c.markSuccess(peer)
			return nil
		}
		c.markFailure(peer)
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	return lastErr
}

func (c *Client) pushOnce(ctx context.Context, peer, key string, data []byte) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+SnapshotPath(key), bytes.NewReader(data))
	if err != nil {
		return false, err
	}
	sum := sha256.Sum256(data)
	req.Header.Set(HeaderSHA256, hex.EncodeToString(sum[:]))
	req.Header.Set(HeaderCRC32, strconv.FormatUint(uint64(crc32.ChecksumIEEE(data)), 10))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return resp.StatusCode >= 500, fmt.Errorf("cluster: push to %s: HTTP %d", peer, resp.StatusCode)
	}
	return false, nil
}
