// Package cluster turns bioperfd into a fleet. The paper's premise —
// characterize a program once and reuse the profile everywhere — is
// single-node in the existing daemon: every cold fingerprint is
// simulated locally even when another node already paid for it. This
// package adds the fleet layer: a consistent-hash ring assigns each
// canonical request fingerprint a primary node and R replicas, a peer
// client fetches characterization artifacts from other nodes' stores
// (verified before admission) so the "remote" tier slots between
// trace replay and cold simulation, freshly computed snapshots are
// replicated write-through to the fingerprint's successors, and an
// overloaded node forwards to the fingerprint's primary instead of
// rejecting.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-node vnode count: enough that a
// three-node ring splits keys within a few percent of evenly, small
// enough that ring construction is trivially cheap.
const DefaultVirtualNodes = 64

type vnode struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is a consistent-hash ring over node addresses. Positions
// depend only on the node names (never on insertion order), so every
// fleet member computes identical assignments from the same peer
// list, however it was ordered on its command line. A Ring is
// immutable after construction and safe for concurrent use.
type Ring struct {
	nodes  []string
	vnodes []vnode
}

// NewRing builds a ring from the given node addresses with vper
// virtual nodes per member (vper <= 0 selects DefaultVirtualNodes).
// Duplicate addresses are collapsed.
func NewRing(nodes []string, vper int) *Ring {
	if vper <= 0 {
		vper = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, vnodes: make([]vnode, 0, len(uniq)*vper)}
	for i, n := range uniq {
		for v := 0; v < vper; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s|vnode=%d", n, v)), node: i})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break on node name so equal hashes (astronomically rare
		// but possible) still order identically on every member.
		return r.nodes[a.node] < r.nodes[b.node]
	})
	return r
}

// hash64 is the ring's position function: the first 8 bytes of
// SHA-256. Speed is irrelevant here (rings are built once, lookups
// hash one key); what matters is uniformity and that every node
// computes the same positions.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring members in canonical (sorted) order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of distinct members.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns up to n distinct nodes responsible for key, walking
// clockwise from the key's position: the first entry is the primary,
// the rest are its successors (the replica set). n <= 0 returns nil;
// n larger than the membership returns every node.
func (r *Ring) Lookup(key string, n int) []string {
	if n <= 0 || len(r.vnodes) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !taken[v.node] {
			taken[v.node] = true
			out = append(out, r.nodes[v.node])
		}
	}
	return out
}

// Primary returns the node owning key ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	owners := r.Lookup(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}
