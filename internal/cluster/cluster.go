package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one fleet member's view of the cluster.
type Config struct {
	// Self is this node's advertised base URL (e.g.
	// "http://127.0.0.1:18981"). Self is always a ring member.
	Self string
	// Peers are the other members' base URLs. Including Self is
	// harmless (the ring dedupes).
	Peers []string
	// Replicas is R: how many successors beyond the primary hold a
	// copy of each artifact (replica set size R+1). 0 keeps every
	// artifact only where it was computed (and on its primary when
	// the primary computed it).
	Replicas int
	// VirtualNodes per member; 0 selects DefaultVirtualNodes.
	VirtualNodes int
	// Client tunes the peer HTTP client.
	Client ClientConfig
}

// Stats is the cluster's counter snapshot for /metrics.
type Stats struct {
	FetchHits      uint64 `json:"fetch_hits"`       // artifacts obtained from a peer
	FetchMisses    uint64 `json:"fetch_misses"`     // peers answering "not found"
	FetchErrors    uint64 `json:"fetch_errors"`     // transport/5xx failures talking to peers
	FetchCorrupt   uint64 `json:"fetch_corrupt"`    // responses rejected by verification
	Replicated     uint64 `json:"replicated"`       // successful replication pushes
	ReplicateError uint64 `json:"replicate_errors"` // failed replication pushes
}

// Cluster is one node's membership view: the ring, the peer client,
// and the replication fan-out. It implements runner.RemoteTier, so a
// Session wired to it gains the "peer" serving tier.
type Cluster struct {
	self     string
	ring     *Ring
	client   *Client
	replicas int

	wg sync.WaitGroup // in-flight async replication pushes

	fetchHits      atomic.Uint64
	fetchMisses    atomic.Uint64
	fetchErrors    atomic.Uint64
	fetchCorrupt   atomic.Uint64
	replicated     atomic.Uint64
	replicateError atomic.Uint64
}

// New builds a cluster view. An empty peer list is valid (a fleet of
// one: every lookup answers Self, Fetch always misses).
func New(cfg Config) *Cluster {
	members := append([]string{cfg.Self}, cfg.Peers...)
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	return &Cluster{
		self:     cfg.Self,
		ring:     NewRing(members, cfg.VirtualNodes),
		client:   NewClient(cfg.Client),
		replicas: cfg.Replicas,
	}
}

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.self }

// Members returns every ring member in canonical order.
func (c *Cluster) Members() []string { return c.ring.Nodes() }

// Replicas returns R, the configured successor count.
func (c *Cluster) Replicas() int { return c.replicas }

// Client exposes the peer client (the service reads its health view).
func (c *Cluster) Client() *Client { return c.client }

// Primary returns the node owning key.
func (c *Cluster) Primary(key string) string { return c.ring.Primary(key) }

// IsPrimary reports whether this node owns key.
func (c *Cluster) IsPrimary(key string) bool { return c.ring.Primary(key) == c.self }

// ReplicaSet returns the R+1 nodes responsible for key, primary
// first.
func (c *Cluster) ReplicaSet(key string) []string { return c.ring.Lookup(key, c.replicas+1) }

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		FetchHits:      c.fetchHits.Load(),
		FetchMisses:    c.fetchMisses.Load(),
		FetchErrors:    c.fetchErrors.Load(),
		FetchCorrupt:   c.fetchCorrupt.Load(),
		Replicated:     c.replicated.Load(),
		ReplicateError: c.replicateError.Load(),
	}
}

// fetchCandidates orders the peers worth asking for key: the replica
// set first (they are supposed to hold it), then every remaining
// member (small fleets can afford the scatter, and it makes the
// remote tier reliable even before replication has caught up or when
// R is 0). Self is never a candidate.
func (c *Cluster) fetchCandidates(key string) []string {
	ordered := append([]string(nil), c.ReplicaSet(key)...)
	inSet := make(map[string]bool, len(ordered))
	for _, n := range ordered {
		inSet[n] = true
	}
	for _, n := range c.ring.Nodes() {
		if !inSet[n] {
			ordered = append(ordered, n)
		}
	}
	out := ordered[:0]
	for _, n := range ordered {
		if n != c.self {
			out = append(out, n)
		}
	}
	return out
}

// Fetch tries the fleet for the artifact stored under key, in replica
// order then scatter, skipping peers marked down. Each response is
// verified against its transfer headers; verify (optional) then
// checks the decoded content — a peer serving self-consistent but
// wrong bytes (the malicious-peer case) fails there and the next
// replica is tried. Returns the verified bytes and whether any peer
// supplied them. Fetch implements half of runner.RemoteTier.
func (c *Cluster) Fetch(ctx context.Context, key string, verify func([]byte) error) ([]byte, bool) {
	for _, peer := range c.fetchCandidates(key) {
		if ctx.Err() != nil {
			return nil, false
		}
		if !c.client.Available(peer) {
			continue
		}
		data, err := c.client.FetchSnapshot(ctx, peer, key)
		switch {
		case err == nil:
		case errors.Is(err, ErrNotFound):
			c.fetchMisses.Add(1)
			continue
		case errors.Is(err, ErrCorrupt):
			c.fetchCorrupt.Add(1)
			continue
		default:
			c.fetchErrors.Add(1)
			continue
		}
		if verify != nil {
			if err := verify(data); err != nil {
				// Transfer-consistent but semantically wrong: treat the
				// peer as unhealthy and keep looking.
				c.fetchCorrupt.Add(1)
				c.client.markFailure(peer)
				continue
			}
		}
		c.fetchHits.Add(1)
		return data, true
	}
	return nil, false
}

// Replicate pushes a freshly computed artifact to the other members
// of key's replica set, asynchronously (the computing request already
// paid seconds of simulation; it should not also wait on peers).
// Replicate implements the other half of runner.RemoteTier.
func (c *Cluster) Replicate(key string, data []byte) {
	for _, peer := range c.ReplicaSet(key) {
		if peer == c.self || !c.client.Available(peer) {
			continue
		}
		c.wg.Add(1)
		go func(peer string) {
			defer c.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := c.client.PushSnapshot(ctx, peer, key, data); err != nil {
				c.replicateError.Add(1)
				return
			}
			c.replicated.Add(1)
		}(peer)
	}
}

// Quiesce blocks until every in-flight replication push has finished
// (shutdown and deterministic tests).
func (c *Cluster) Quiesce() { c.wg.Wait() }
