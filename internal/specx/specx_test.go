package specx

import (
	"fmt"
	"testing"

	"bioperfload/internal/compiler"
	"bioperfload/internal/ir"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/sim"
)

// TestCrossConfigEquivalence is the analogs' correctness check: the
// printed output must be identical across optimization levels and
// register budgets.
func TestCrossConfigEquivalence(t *testing.T) {
	configs := []compiler.Options{
		{Opt: ir.O2()},
		{Opt: ir.O0()},
		{Opt: ir.O2(), AllocIntRegs: 8, AllocFPRegs: 8},
	}
	for _, a := range All() {
		var want string
		for ci, opts := range configs {
			res, err := a.Run(true, opts)
			if err != nil {
				t.Fatalf("%s config %d: %v", a.Name, ci, err)
			}
			got := fmt.Sprint(res.IntOutput, res.FPOutput)
			if ci == 0 {
				want = got
				if len(res.IntOutput) == 0 {
					t.Errorf("%s produced no output", a.Name)
				}
			} else if got != want {
				t.Errorf("%s config %d output %s, want %s", a.Name, ci, got, want)
			}
		}
	}
}

// TestFlatCoverage checks the Figure 2 property: the analogs' top-80
// static-load coverage is well below the BioPerf codes' >90%.
func TestFlatCoverage(t *testing.T) {
	for _, a := range All() {
		prog, err := a.Compile(true, compiler.Default())
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		if a.bind != nil {
			if err := a.bind(m, true); err != nil {
				t.Fatal(err)
			}
		}
		an := loadchar.New(prog)
		m.AddObserver(an)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		cov := an.CoverageAt(80)
		n := an.StaticLoadCount()
		t.Logf("%s: %d static loads, top-80 coverage %.1f%%", a.Name, n, cov*100)
		if n < 100 {
			t.Errorf("%s has only %d static loads; not a flat-profile program", a.Name, n)
		}
		if cov > 0.85 {
			t.Errorf("%s top-80 coverage %.2f too concentrated for a SPEC analog", a.Name, cov)
		}
	}
}

// TestSynthesizerControlsSkew checks the ablation knob: higher skew
// concentrates coverage.
func TestSynthesizerControlsSkew(t *testing.T) {
	cov := func(skew float64) float64 {
		cfg := SynthConfig{Name: "s", NumFuncs: 24, LoadsPerFunc: 6,
			ArraySize: 32, Iters: 300, Skew: skew}
		prog, err := compiler.Compile("synth.mc", Synthesize(cfg), compiler.Default())
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		an := loadchar.New(prog)
		m.AddObserver(an)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return an.CoverageAt(30)
	}
	flat := cov(0)
	skewed := cov(3)
	if skewed <= flat {
		t.Errorf("skew 3 coverage %.3f should exceed skew 0 coverage %.3f", skewed, flat)
	}
}

func TestSynthesizerDefaults(t *testing.T) {
	src := Synthesize(SynthConfig{Name: "d", Iters: 10})
	prog, err := compiler.Compile("d.mc", src, compiler.Default())
	if err != nil {
		t.Fatalf("default synth does not compile: %v", err)
	}
	m, _ := sim.New(prog)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPowHelper(t *testing.T) {
	cases := []struct{ x, y, want, tol float64 }{
		{2, 0, 1, 0},
		{2, 1, 2, 0},
		{2, 2, 4, 0},
		{4, 0.5, 2, 0.1},
		{9, 0.5, 3, 0.15},
		{2, 1.5, 2.828, 0.15},
	}
	for _, c := range cases {
		got := pow(c.x, c.y)
		if got < c.want-c.tol-1e-9 || got > c.want+c.tol+1e-9 {
			t.Errorf("pow(%g,%g) = %g, want ~%g", c.x, c.y, got, c.want)
		}
	}
}
