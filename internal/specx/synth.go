package specx

import (
	"fmt"
	"strings"
)

// SynthConfig parameterizes the workload synthesizer, which produces
// a MiniC program with a controlled static-load profile: NumFuncs
// functions, each reading LoadsPerFunc distinct arrays, driven by a
// schedule whose function-call frequencies follow a power law with
// exponent Skew (0 = uniform, larger = more concentrated). The
// synthesizer exists for two jobs: the gcc-scale Figure 2 comparison
// point (hundreds of near-uniformly exercised static loads) and
// controlled ablations of the coverage metric.
type SynthConfig struct {
	Name         string
	NumFuncs     int
	LoadsPerFunc int
	ArraySize    int // elements per array
	Iters        int // driver iterations
	Skew         float64
}

// GccConfig returns the gcc-analog configuration: many functions,
// near-uniform call profile.
func GccConfig(small bool) SynthConfig {
	iters := 4000
	if small {
		iters = 400
	}
	return SynthConfig{
		Name: "gccx", NumFuncs: 48, LoadsPerFunc: 8,
		ArraySize: 64, Iters: iters, Skew: 0.3,
	}
}

// Synthesize generates the MiniC source for cfg.
func Synthesize(cfg SynthConfig) string {
	if cfg.NumFuncs <= 0 {
		cfg.NumFuncs = 8
	}
	if cfg.LoadsPerFunc <= 0 {
		cfg.LoadsPerFunc = 4
	}
	if cfg.ArraySize <= 0 {
		cfg.ArraySize = 64
	}
	var b strings.Builder
	fmt.Fprintf(&b, "int iters = %d;\nint seedz = 31415926;\n", cfg.Iters)
	for f := 0; f < cfg.NumFuncs; f++ {
		for l := 0; l < cfg.LoadsPerFunc; l++ {
			fmt.Fprintf(&b, "int tab_%d_%d[%d];\n", f, l, cfg.ArraySize)
		}
	}
	b.WriteString(`
int rndz(int lim) {
	seedz = seedz * 6364136223846793005 + 1442695040888963407;
	int v = (seedz >> 33) & 1048575;
	return v % lim;
}
`)
	// Each function folds its arrays with a mix of stride patterns
	// and data-dependent branches.
	for f := 0; f < cfg.NumFuncs; f++ {
		fmt.Fprintf(&b, "int work_%d(int x) {\n\tint s = x; int i;\n", f)
		fmt.Fprintf(&b, "\tfor (i = 0; i < %d; i++) {\n", cfg.ArraySize/2)
		for l := 0; l < cfg.LoadsPerFunc; l++ {
			switch l % 4 {
			case 0:
				fmt.Fprintf(&b, "\t\ts = s + tab_%d_%d[i];\n", f, l)
			case 1:
				fmt.Fprintf(&b, "\t\tif (tab_%d_%d[i * 2 %% %d] > s %% 97) s = s - %d;\n",
					f, l, cfg.ArraySize, l+1)
			case 2:
				fmt.Fprintf(&b, "\t\ts = s ^ tab_%d_%d[(i + x) %% %d];\n", f, l, cfg.ArraySize)
			default:
				fmt.Fprintf(&b, "\t\tif (s %% 3 == 0) s = s + tab_%d_%d[i %% %d];\n",
					f, l, cfg.ArraySize)
			}
		}
		b.WriteString("\t}\n\treturn s;\n}\n")
	}
	// Initialization plus a power-law driver: function k is called
	// when the random draw falls in its weight bucket. We encode the
	// cumulative weights as compile-time constants.
	b.WriteString("\nint main() {\n\tint k; int f2; int s = 1; int i;\n")
	for f := 0; f < cfg.NumFuncs; f++ {
		for l := 0; l < cfg.LoadsPerFunc; l++ {
			fmt.Fprintf(&b, "\tfor (i = 0; i < %d; i++) tab_%d_%d[i] = (i * %d + %d) %% 201 - 100;\n",
				cfg.ArraySize, f, l, 7+f, 3+l)
		}
	}
	// Cumulative weight thresholds scaled to 1<<20.
	total := 0.0
	w := make([]float64, cfg.NumFuncs)
	for f := 0; f < cfg.NumFuncs; f++ {
		w[f] = 1.0 / pow(float64(f+1), cfg.Skew)
		total += w[f]
	}
	fmt.Fprintf(&b, "\tfor (k = 0; k < iters; k++) {\n\t\tf2 = rndz(1048576);\n")
	cum := 0.0
	for f := 0; f < cfg.NumFuncs; f++ {
		cum += w[f]
		thr := int(cum / total * 1048576)
		if f == cfg.NumFuncs-1 {
			thr = 1048576
		}
		if f == 0 {
			fmt.Fprintf(&b, "\t\tif (f2 < %d) s = s + work_%d(s);\n", thr, f)
		} else {
			fmt.Fprintf(&b, "\t\telse if (f2 < %d) s = s + work_%d(s);\n", thr, f)
		}
	}
	b.WriteString("\t}\n\tprint(s);\n\treturn 0;\n}\n")
	return b.String()
}

func pow(x, y float64) float64 {
	// Small positive powers via exp/log-free iteration: y in [0, 4]
	// with 0.1 resolution is plenty for skew control.
	if y == 0 {
		return 1
	}
	// Integer part.
	r := 1.0
	for y >= 1 {
		r *= x
		y--
	}
	if y > 0 {
		// Square-root based fractional approximation: x^y ~
		// successive halvings of the exponent.
		frac := 1.0
		base := x
		for e := 0.5; e > 1.0/64; e /= 2 {
			base = sqrt(base)
			if y >= e {
				frac *= base
				y -= e
			}
		}
		r *= frac
	}
	return r
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}
