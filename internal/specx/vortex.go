package specx

// VortexSource is an object-database analog: typed records in
// parallel arrays, hash-chained indices, link traversals, and a mixed
// transaction stream — the pointer-chasing, many-site load profile of
// SPEC's vortex.
const VortexSource = `
int nops = 0;
int seedv = 0;

int recId[2048]; int recType[2048]; int recA[2048]; int recB[2048];
int recC[2048]; int recLink[2048]; int recLive[2048];
int hashHead[256]; int hashNext[2048];
int typeCount[8];
int freeTop = 0;
int auditFail = 0;

int rndv(int lim) {
	seedv = seedv * 6364136223846793005 + 1442695040888963407;
	int v = (seedv >> 33) & 1048575;
	return v % lim;
}

int hashOf(int id) { return (id * 2654435761) % 256 < 0 ? 0 - ((id * 2654435761) % 256) : (id * 2654435761) % 256; }

int insert(int id, int ty, int a, int b) {
	if (freeTop >= 2048) return -1;
	int slot = freeTop;
	freeTop = freeTop + 1;
	recId[slot] = id;
	recType[slot] = ty;
	recA[slot] = a;
	recB[slot] = b;
	recC[slot] = a ^ b;
	recLive[slot] = 1;
	recLink[slot] = -1;
	int h = hashOf(id);
	hashNext[slot] = hashHead[h];
	hashHead[h] = slot;
	typeCount[ty % 8] = typeCount[ty % 8] + 1;
	return slot;
}

int lookup(int id) {
	int h = hashOf(id);
	int p;
	for (p = hashHead[h]; p != -1; p = hashNext[p]) {
		if (recId[p] == id) {
			if (recLive[p]) return p;
		}
	}
	return -1;
}

int lookup2(int id) {
	int h = hashOf(id);
	int p;
	for (p = hashHead[h]; p != -1; p = hashNext[p]) {
		if (recId[p] == id) {
			if (recLive[p]) {
				if (recType[p] % 2 == 0) return p;
				return p;
			}
		}
	}
	return -1;
}

int lookup3(int id) {
	int h = hashOf(id);
	int p;
	for (p = hashHead[h]; p != -1; p = hashNext[p]) {
		if (recLive[p]) {
			if (recId[p] == id) return p;
		}
	}
	return -1;
}

int lookup4(int id) {
	int h = hashOf(id);
	int p; int depth = 0;
	for (p = hashHead[h]; p != -1; p = hashNext[p]) {
		depth = depth + 1;
		if (recId[p] == id) {
			if (recLive[p]) return p;
		}
		if (depth > 64) return -1;
	}
	return -1;
}

int linkRecords(int ida, int idb) {
	int a = lookup2(ida);
	int b = lookup3(idb);
	if (a < 0) return 0;
	if (b < 0) return 0;
	recLink[a] = b;
	return 1;
}

int chase(int id, int maxhops) {
	int p = lookup2(id);
	int hops = 0;
	int acc = 0;
	while (p != -1) {
		if (hops >= maxhops) break;
		acc = acc + recA[p] - recB[p] + recC[p] % 7;
		p = recLink[p];
		hops = hops + 1;
	}
	return acc;
}

int updateFields(int id, int delta) {
	int p = lookup3(id);
	if (p < 0) return 0;
	recA[p] = recA[p] + delta;
	recB[p] = recB[p] - delta / 2;
	recC[p] = recA[p] ^ recB[p];
	return 1;
}

int eraseRecord(int id) {
	int p = lookup4(id);
	if (p < 0) return 0;
	recLive[p] = 0;
	typeCount[recType[p] % 8] = typeCount[recType[p] % 8] - 1;
	return 1;
}

int reportA() {
	int i; int s = 0;
	for (i = 0; i < freeTop; i++) if (recLive[i]) s = s + recA[i];
	return s;
}
int reportB() {
	int i; int s = 0;
	for (i = 0; i < freeTop; i++) if (recLive[i]) s = s ^ recB[i];
	return s;
}
int reportC() {
	int i; int s = 0;
	for (i = 0; i < freeTop; i++) {
		if (recType[i] % 3 == 1) s = s + recC[i] % 13;
	}
	return s;
}
int deepest() {
	int h; int best = 0;
	for (h = 0; h < 256; h++) {
		int d = 0; int p;
		for (p = hashHead[h]; p != -1; p = hashNext[p]) d = d + 1;
		if (d > best) best = d;
	}
	return best;
}

int audit() {
	int i; int bad = 0;
	for (i = 0; i < freeTop; i++) {
		if (recLive[i]) {
			if (recC[i] != (recA[i] ^ recB[i])) bad = bad + 1;
			if (recLink[i] >= 0) {
				if (recLive[recLink[i]] == 0) bad = bad + 1;
			}
		}
	}
	return bad;
}

int main() {
	int op; int k; int acc = 0; int ok = 0;
	seedv = 77777;
	for (k = 0; k < 256; k++) hashHead[k] = -1;
	for (k = 0; k < nops; k++) {
		op = rndv(100);
		int id = rndv(4000);
		if (op < 35) {
			ok = ok + insert(id, rndv(8), rndv(1000), rndv(1000));
		} else if (op < 60) {
			int p = lookup(id);
			if (p >= 0) acc = acc + recA[p];
		} else if (op < 72) {
			ok = ok + updateFields(id, rndv(50) - 25);
		} else if (op < 84) {
			ok = ok + linkRecords(id, rndv(4000));
		} else if (op < 89) {
			acc = acc + chase(id, 6);
		} else if (op < 92) {
			ok = ok + eraseRecord(id);
		} else if (op < 94) {
			acc = acc + reportA();
		} else if (op < 96) {
			acc = acc + reportB();
		} else if (op < 97) {
			acc = acc + reportC();
		} else if (op < 98) {
			acc = acc + deepest();
		} else {
			auditFail = auditFail + audit();
		}
	}
	int t; int tsum = 0;
	for (t = 0; t < 8; t++) tsum = tsum * 7 + typeCount[t];
	print(acc);
	print(ok);
	print(tsum);
	print(auditFail);
	return 0;
}
`

// VortexOps returns the transaction count per size.
func VortexOps(small bool) int64 {
	if small {
		return 800
	}
	return 30000
}
