// Package specx provides the SPEC CPU2000 integer comparison points
// the paper's Figure 2 contrasts with BioPerf: programs whose dynamic
// loads are spread over many static loads, so the cumulative coverage
// of the top-80 static loads is far below the bioinformatics codes'
// >90%. craftyx is a hand-written chess-evaluation analog, vortexx an
// in-memory object-store analog, and gccx is produced by a program
// synthesizer that spreads load sites across many functions with a
// near-uniform profile (the real gcc's distribution).
//
// These programs have no Go reference implementation; their
// correctness check is cross-configuration output equivalence (O0 and
// O2 with different register budgets must print identical values),
// which exercises the whole toolchain.
package specx

// CraftySource is a chess-flavored integer program: piece-square
// evaluation, mobility scans, a pawn-structure pass, and a shallow
// negamax search over a pseudo-random move stream, with the loads
// spread across per-piece tables and a dozen functions.
const CraftySource = `
int board[64];
int pstPawn[64]; int pstKnight[64]; int pstBishop[64];
int pstRook[64]; int pstQueen[64]; int pstKing[64];
int mobKnight[16]; int mobBishop[16]; int mobRook[16]; int mobQueen[32];
int pawnFile[8]; int passedBonus[8]; int kingShield[8];
int history[1024];
int killer[64];
int moves[256];
int undo[64];
int seedg = 0;
int nodes = 0;

int rnd(int lim) {
	seedg = seedg * 6364136223846793005 + 1442695040888963407;
	int v = (seedg >> 33) & 1048575;
	return v % lim;
}

int evalMaterial() {
	int s = 0; int i; int p;
	for (i = 0; i < 64; i++) {
		p = board[i];
		if (p == 1) s = s + 100;
		if (p == 2) s = s + 320;
		if (p == 3) s = s + 330;
		if (p == 4) s = s + 500;
		if (p == 5) s = s + 900;
		if (p == -1) s = s - 100;
		if (p == -2) s = s - 320;
		if (p == -3) s = s - 330;
		if (p == -4) s = s - 500;
		if (p == -5) s = s - 900;
	}
	return s;
}

int evalPST() {
	int s = 0; int i; int p;
	for (i = 0; i < 64; i++) {
		p = board[i];
		if (p == 1) s = s + pstPawn[i];
		if (p == 2) s = s + pstKnight[i];
		if (p == 3) s = s + pstBishop[i];
		if (p == 4) s = s + pstRook[i];
		if (p == 5) s = s + pstQueen[i];
		if (p == 6) s = s + pstKing[i];
		if (p == -1) s = s - pstPawn[63 - i];
		if (p == -2) s = s - pstKnight[63 - i];
		if (p == -3) s = s - pstBishop[63 - i];
		if (p == -4) s = s - pstRook[63 - i];
		if (p == -5) s = s - pstQueen[63 - i];
		if (p == -6) s = s - pstKing[63 - i];
	}
	return s;
}

int evalPawns() {
	int s = 0; int i; int f;
	for (f = 0; f < 8; f++) pawnFile[f] = 0;
	for (i = 0; i < 64; i++) {
		if (board[i] == 1) pawnFile[i % 8] = pawnFile[i % 8] + 1;
	}
	for (f = 0; f < 8; f++) {
		if (pawnFile[f] > 1) s = s - 12 * (pawnFile[f] - 1);
		if (pawnFile[f] == 1) s = s + passedBonus[f];
		if (pawnFile[f] == 0) {
			if (f < 3) s = s - kingShield[f];
		}
	}
	return s;
}

int evalMobility() {
	int s = 0; int i; int p; int m;
	for (i = 0; i < 64; i++) {
		p = board[i];
		if (p == 2) {
			m = (i % 8 + i / 8) % 9;
			s = s + mobKnight[m];
		}
		if (p == 3) {
			m = (i * 3 + 5) % 13;
			s = s + mobBishop[m];
		}
		if (p == 4) {
			m = (i * 5 + 1) % 14;
			s = s + mobRook[m];
		}
		if (p == 5) {
			m = (i * 7 + 3) % 27;
			s = s + mobQueen[m];
		}
	}
	return s;
}

int evaluate() {
	nodes = nodes + 1;
	return evalMaterial() + evalPST() + evalPawns() + evalMobility();
}

int genMoves() {
	int n = 0; int i;
	for (i = 0; i < 64; i++) {
		if (board[i] > 0) {
			if (n < 250) {
				moves[n] = i * 64 + (i * 13 + board[i] * 7 + 11) % 64;
				n = n + 1;
			}
		}
	}
	return n;
}

int search(int depth, int alpha, int beta) {
	if (depth == 0) return evaluate();
	int n = genMoves();
	if (n == 0) return evaluate();
	int best = -999999; int k; int sc;
	int tried = 0;
	for (k = 0; k < n; k++) {
		if (tried >= 4) break;
		int mv = moves[k % 256];
		int from = mv / 64;
		int to = mv % 64;
		int cap = board[to];
		int pc = board[from];
		int hist = history[(mv + depth) % 1024];
		if (hist < -50) continue;
		tried = tried + 1;
		board[to] = pc;
		board[from] = 0;
		sc = 0 - search(depth - 1, 0 - beta, 0 - alpha);
		board[from] = pc;
		board[to] = cap;
		history[(mv + depth) % 1024] = hist + (sc > alpha ? 1 : -1);
		if (sc > best) best = sc;
		if (best > alpha) alpha = best;
		if (alpha >= beta) {
			killer[depth % 64] = mv;
			break;
		}
	}
	return best;
}

int positions = 0;

int main() {
	int g; int i; int total = 0;
	seedg = 20260706;
	for (i = 0; i < 64; i++) {
		pstPawn[i] = (i % 8) * 2 - 4;
		pstKnight[i] = 12 - (i % 11);
		pstBishop[i] = (i % 7) * 3 - 6;
		pstRook[i] = (i % 5) - 2;
		pstQueen[i] = (i % 9) - 4;
		pstKing[i] = 8 - (i % 16);
	}
	for (i = 0; i < 16; i++) {
		mobKnight[i] = i * 4 - 8;
		mobBishop[i] = i * 3 - 6;
		mobRook[i] = i * 2 - 4;
	}
	for (i = 0; i < 32; i++) mobQueen[i] = i - 8;
	for (i = 0; i < 8; i++) {
		passedBonus[i] = i * 5;
		kingShield[i] = 10 - i;
	}
	for (g = 0; g < positions; g++) {
		for (i = 0; i < 64; i++) {
			int r = rnd(24);
			if (r < 6) board[i] = r - 6; /* negative pieces */
			else if (r < 13) board[i] = r - 6;
			else board[i] = 0;
		}
		total = total + search(3, -999999, 999999);
	}
	print(total);
	print(nodes);
	return 0;
}
`

// CraftyPositions returns the driver iteration count for a target
// dynamic size.
func CraftyPositions(small bool) int64 {
	if small {
		return 12
	}
	return 300
}
