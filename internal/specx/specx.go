package specx

import (
	"fmt"

	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// Analog is one SPEC-like comparison program.
type Analog struct {
	Name   string
	source func(small bool) string
	// Bind injects the driver iteration count.
	bind func(m *sim.Machine, small bool) error
}

// Source returns the MiniC source for the given scale.
func (a *Analog) Source(small bool) string { return a.source(small) }

// Compile builds the analog.
func (a *Analog) Compile(small bool, opts compiler.Options) (*isa.Program, error) {
	return compiler.Compile(a.Name+".mc", a.Source(small), opts)
}

// Run compiles and executes, returning the printed output.
func (a *Analog) Run(small bool, opts compiler.Options, obs ...sim.Observer) (*sim.Result, error) {
	prog, err := a.Compile(small, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	m, err := sim.New(prog)
	if err != nil {
		return nil, err
	}
	if a.bind != nil {
		if err := a.bind(m, small); err != nil {
			return nil, err
		}
	}
	for _, o := range obs {
		m.AddObserver(o)
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return res, nil
}

// All returns the three Figure 2 comparison programs.
func All() []*Analog {
	return []*Analog{Crafty(), Vortex(), Gcc()}
}

// Crafty returns the crafty analog.
func Crafty() *Analog {
	return &Analog{
		Name:   "craftyx",
		source: func(bool) string { return CraftySource },
		bind: func(m *sim.Machine, small bool) error {
			return m.WriteSymbolInt64s("positions", []int64{CraftyPositions(small)})
		},
	}
}

// Vortex returns the vortex analog.
func Vortex() *Analog {
	return &Analog{
		Name:   "vortexx",
		source: func(bool) string { return VortexSource },
		bind: func(m *sim.Machine, small bool) error {
			return m.WriteSymbolInt64s("nops", []int64{VortexOps(small)})
		},
	}
}

// Gcc returns the synthesized gcc-scale analog.
func Gcc() *Analog {
	return &Analog{
		Name:   "gccx",
		source: func(small bool) string { return Synthesize(GccConfig(small)) },
	}
}
