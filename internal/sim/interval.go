package sim

// IntervalFunc is invoked at every fixed-size committed-instruction
// interval boundary of a split stream: index is the interval that just
// completed (0-based) and end is the sequence number one past its last
// event.
type IntervalFunc func(index int, end uint64)

// IntervalSplitter is a BatchObserver that cuts the committed stream
// into fixed-size intervals. Slabs are forwarded to the inner observer
// in segments that never straddle an interval edge, and the boundary
// callback fires between segments — so the inner observer can treat
// "everything since the last callback" as exactly one interval's
// events. It is how the sampling subsystem collects basic-block
// vectors both live (attached to a Machine) and from trace replay
// (fed decoded slabs).
//
// The splitter assumes events arrive in commit order starting at the
// sequence number given to NewIntervalSplitter. It is not safe for
// concurrent use; each decode lane owns its own splitter.
type IntervalSplitter struct {
	size     uint64
	inner    BatchObserver
	boundary IntervalFunc
	next     uint64 // sequence number of the next boundary
	index    int    // interval currently being filled
}

// NewIntervalSplitter creates a splitter over intervals of the given
// size (events per interval, must be > 0), starting at sequence number
// start. start must lie on an interval edge (start%size == 0): the
// splitter derives the current interval index from it.
func NewIntervalSplitter(size uint64, start uint64, inner BatchObserver, boundary IntervalFunc) *IntervalSplitter {
	if size == 0 {
		panic("sim: interval size must be > 0")
	}
	if start%size != 0 {
		panic("sim: interval start must be a multiple of the interval size")
	}
	return &IntervalSplitter{
		size:     size,
		inner:    inner,
		boundary: boundary,
		next:     start + size,
		index:    int(start / size),
	}
}

// ObserveBatch forwards evs to the inner observer, splitting at every
// interval boundary and firing the boundary callback in between.
func (s *IntervalSplitter) ObserveBatch(evs []Event) {
	for len(evs) > 0 {
		base := evs[0].Seq
		// Events within a slab are contiguous in sequence, so the cut
		// point is a simple offset from the slab base.
		if base+uint64(len(evs)) <= s.next {
			s.inner.ObserveBatch(evs)
			if base+uint64(len(evs)) == s.next {
				s.fire()
			}
			return
		}
		cut := s.next - base
		s.inner.ObserveBatch(evs[:cut])
		s.fire()
		evs = evs[cut:]
	}
}

// Flush fires the boundary callback for a trailing partial interval
// (one that ended before reaching the full size). end is the sequence
// number one past the stream's last event; a stream that ended exactly
// on a boundary flushes nothing.
func (s *IntervalSplitter) Flush(end uint64) {
	if end+s.size != s.next && s.boundary != nil {
		s.boundary(s.index, end)
		s.index++
	}
}

func (s *IntervalSplitter) fire() {
	if s.boundary != nil {
		s.boundary(s.index, s.next)
	}
	s.index++
	s.next += s.size
}
