package sim

import "testing"

// seqRecorder records the Seq of every delivered event.
type seqRecorder struct {
	seqs []uint64
}

func (r *seqRecorder) ObserveBatch(evs []Event) {
	for i := range evs {
		r.seqs = append(r.seqs, evs[i].Seq)
	}
}

// TestSamplingWindows checks SetSampling's contract: only the first
// `observe` committed instructions of every `period`-sized window are
// delivered, windows are aligned to the committed-instruction count,
// and the functional result is unaffected.
func TestSamplingWindows(t *testing.T) {
	const observe, period = 4, 16

	full, err := New(sumProgram(500))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(sumProgram(500))
	if err != nil {
		t.Fatal(err)
	}
	rec := &seqRecorder{}
	m.AddBatchObserver(rec)
	m.SetSampling(observe, period)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	if res.Instructions != ref.Instructions {
		t.Errorf("sampled run committed %d instructions, unsampled %d",
			res.Instructions, ref.Instructions)
	}
	if len(res.IntOutput) != 1 || res.IntOutput[0] != ref.IntOutput[0] {
		t.Errorf("sampled output %v, unsampled %v", res.IntOutput, ref.IntOutput)
	}

	// Exactly the in-window events, in order.
	var want []uint64
	for seq := uint64(0); seq < ref.Instructions; seq++ {
		if seq%period < observe {
			want = append(want, seq)
		}
	}
	if len(rec.seqs) != len(want) {
		t.Fatalf("observed %d events, want %d", len(rec.seqs), len(want))
	}
	for i := range want {
		if rec.seqs[i] != want[i] {
			t.Fatalf("event %d has Seq %d, want %d", i, rec.seqs[i], want[i])
		}
	}
}

// TestSamplingDisabled checks the degenerate parameter cases: zero
// observe/period or observe >= period turn sampling off, delivering
// the complete stream.
func TestSamplingDisabled(t *testing.T) {
	cases := []struct{ observe, period uint64 }{
		{0, 0},
		{0, 16},
		{16, 0},
		{16, 16},
		{32, 16},
	}
	for _, c := range cases {
		m, err := New(sumProgram(50))
		if err != nil {
			t.Fatal(err)
		}
		rec := &seqRecorder{}
		m.AddBatchObserver(rec)
		m.SetSampling(c.observe, c.period)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(rec.seqs)) != res.Instructions {
			t.Errorf("SetSampling(%d, %d): observed %d of %d events, want all",
				c.observe, c.period, len(rec.seqs), res.Instructions)
		}
	}
}
