package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"bioperfload/internal/isa"
)

// sumProgram builds: sum = 0; for i = n-1; i >= 0; i-- sum += i; print sum.
func sumProgram(n int64) *isa.Program {
	b := isa.NewBuilder("sum")
	b.Ldiq(1, 0)   // r1 = sum
	b.Ldiq(2, n-1) // r2 = i
	b.Label("loop")
	b.Branch(isa.OpBlt, 2, "done")
	b.Op3(isa.OpAdd, 1, 1, 2)
	b.OpI(isa.OpSub, 2, 2, 1)
	b.Branch(isa.OpBr, 0, "loop")
	b.Label("done")
	b.Print(1)
	b.Halt()
	return b.MustProgram()
}

func TestSumLoop(t *testing.T) {
	m, err := New(sumProgram(100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IntOutput) != 1 || res.IntOutput[0] != 4950 {
		t.Fatalf("output = %v, want [4950]", res.IntOutput)
	}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.OpAdd, 3, 4, 7},
		{isa.OpSub, 3, 4, -1},
		{isa.OpMul, -3, 4, -12},
		{isa.OpDiv, 7, 2, 3},
		{isa.OpDiv, -7, 2, -3},
		{isa.OpRem, 7, 2, 1},
		{isa.OpRem, -7, 2, -1},
		{isa.OpAnd, 0b1100, 0b1010, 0b1000},
		{isa.OpOr, 0b1100, 0b1010, 0b1110},
		{isa.OpXor, 0b1100, 0b1010, 0b0110},
		{isa.OpSll, 1, 10, 1024},
		{isa.OpSrl, -8, 1, int64(uint64(0xFFFFFFFFFFFFFFF8) >> 1)},
		{isa.OpSra, -8, 1, -4},
		{isa.OpCmpEq, 5, 5, 1},
		{isa.OpCmpEq, 5, 6, 0},
		{isa.OpCmpLt, -1, 0, 1},
		{isa.OpCmpLt, 0, 0, 0},
		{isa.OpCmpLe, 0, 0, 1},
		{isa.OpCmpUlt, -1, 0, 0}, // unsigned: 0xFFFF... not < 0
		{isa.OpCmpUlt, 0, -1, 1},
	}
	for _, c := range cases {
		b := isa.NewBuilder("alu")
		b.Ldiq(1, c.a)
		b.Ldiq(2, c.b)
		b.Op3(c.op, 3, 1, 2)
		b.Print(3)
		b.Halt()
		m, err := New(b.MustProgram())
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", c.op, c.a, c.b, err)
		}
		if res.IntOutput[0] != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, res.IntOutput[0], c.want)
		}
	}
}

func TestImmediateForms(t *testing.T) {
	b := isa.NewBuilder("imm")
	b.Ldiq(1, 10)
	b.OpI(isa.OpAdd, 2, 1, 5)
	b.OpI(isa.OpMul, 3, 2, -2)
	b.OpI(isa.OpCmpLt, 4, 3, 0)
	b.Print(2)
	b.Print(3)
	b.Print(4)
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{15, -30, 1}
	for i, w := range want {
		if res.IntOutput[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, res.IntOutput[i], w)
		}
	}
}

func TestZeroRegister(t *testing.T) {
	b := isa.NewBuilder("zero")
	b.Ldiq(isa.RZero, 42) // discarded
	b.OpI(isa.OpAdd, 1, isa.RZero, 7)
	b.Print(1)
	b.Print(isa.RZero)
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntOutput[0] != 7 || res.IntOutput[1] != 0 {
		t.Errorf("zero register not hard-wired: %v", res.IntOutput)
	}
}

func TestMemoryOps(t *testing.T) {
	b := isa.NewBuilder("mem")
	addr := b.Global("buf", 64, 8, false)
	b.Ldiq(1, int64(addr))
	b.Ldiq(2, 1234)
	b.Store(isa.OpStq, 2, 1, 8)
	b.Load(isa.OpLdq, 3, 1, 8)
	b.Print(3)
	b.Ldiq(4, 0x1FF) // STB truncates to low byte
	b.Store(isa.OpStb, 4, 1, 0)
	b.Load(isa.OpLdbu, 5, 1, 0)
	b.Print(5)
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntOutput[0] != 1234 || res.IntOutput[1] != 0xFF {
		t.Errorf("memory ops: %v", res.IntOutput)
	}
}

func TestFloatOps(t *testing.T) {
	b := isa.NewBuilder("fp")
	b.Ldiq(1, 7)
	b.Emit(isa.Inst{Op: isa.OpCvtQT, Rd: 1, Ra: 1}) // f1 = 7.0
	b.Ldiq(2, 2)
	b.Emit(isa.Inst{Op: isa.OpCvtQT, Rd: 2, Ra: 2}) // f2 = 2.0
	b.Emit(isa.Inst{Op: isa.OpDivt, Rd: 3, Ra: 1, Rb: 2})
	b.Emit(isa.Inst{Op: isa.OpPrintF, Ra: 3})
	b.Emit(isa.Inst{Op: isa.OpCmpTlt, Rd: 4, Ra: 2, Rb: 1}) // 2.0 < 7.0
	b.Print(4)
	b.Emit(isa.Inst{Op: isa.OpCvtTQ, Rd: 5, Ra: 3}) // int64(3.5) = 3
	b.Print(5)
	b.Emit(isa.Inst{Op: isa.OpFNeg, Rd: 6, Ra: 3})
	b.Emit(isa.Inst{Op: isa.OpPrintF, Ra: 6})
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FPOutput[0] != 3.5 || res.FPOutput[1] != -3.5 {
		t.Errorf("fp output = %v", res.FPOutput)
	}
	if res.IntOutput[0] != 1 || res.IntOutput[1] != 3 {
		t.Errorf("int output = %v", res.IntOutput)
	}
}

func TestCmovs(t *testing.T) {
	// r3 = max(r1, r2) via cmov.
	check := func(a, b, want int64) {
		bb := isa.NewBuilder("cmov")
		bb.Ldiq(1, a)
		bb.Ldiq(2, b)
		bb.Op3(isa.OpAdd, 3, 1, isa.RZero) // r3 = a
		bb.Op3(isa.OpSub, 4, 2, 1)         // r4 = b - a
		bb.Op3(isa.OpCmovGt, 3, 4, 2)      // if r4 > 0: r3 = b
		bb.Print(3)
		bb.Halt()
		m, _ := New(bb.MustProgram())
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.IntOutput[0] != want {
			t.Errorf("max(%d,%d) = %d, want %d", a, b, res.IntOutput[0], want)
		}
	}
	check(3, 9, 9)
	check(9, 3, 9)
	check(5, 5, 5)
	check(-4, -2, -2)
}

func TestCallReturn(t *testing.T) {
	// main: r16=21; jsr double; print r0; halt. double: r0 = r16*2; ret.
	b := isa.NewBuilder("call")
	b.Ldiq(isa.RegA0, 21)
	b.Jsr(isa.RegRA, "double")
	b.Print(0)
	b.Halt()
	b.Label("double")
	b.OpI(isa.OpMul, 0, isa.RegA0, 2)
	b.Ret(isa.RegRA)
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntOutput[0] != 42 {
		t.Errorf("call result = %d", res.IntOutput[0])
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	b := isa.NewBuilder("trap")
	b.Ldiq(1, 1)
	b.Op3(isa.OpDiv, 2, 1, isa.RZero)
	b.Halt()
	m, _ := New(b.MustProgram())
	_, err := m.Run()
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want Trap, got %v", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("loop")
	b.Branch(isa.OpBr, 0, "loop")
	b.Halt()
	m, _ := New(b.MustProgram())
	m.Fuel = 1000
	res, err := m.Run()
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("want fuel exhaustion, got %v", err)
	}
	if res.Instructions != 1000 {
		t.Errorf("executed %d, want 1000", res.Instructions)
	}
}

func TestObserverStream(t *testing.T) {
	m, _ := New(sumProgram(10))
	var loads, stores, branches, taken, total uint64
	m.AddObserver(ObserverFunc(func(ev *Event) {
		total++
		switch isa.ClassOf(ev.Inst.Op) {
		case isa.ClassLoad:
			loads++
		case isa.ClassStore:
			stores++
		case isa.ClassCondBranch:
			branches++
			if ev.Taken {
				taken++
			}
		}
	}))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if total != res.Instructions {
		t.Errorf("observer saw %d, result says %d", total, res.Instructions)
	}
	// Loop body runs 10 times, BLT checked 11 times, taken once.
	if branches != 11 || taken != 1 {
		t.Errorf("branches = %d taken = %d, want 11/1", branches, taken)
	}
	if loads != 0 || stores != 0 {
		t.Errorf("unexpected memory ops: %d loads %d stores", loads, stores)
	}
}

func TestObserverSequencing(t *testing.T) {
	m, _ := New(sumProgram(5))
	var last uint64
	var first = true
	m.AddObserver(ObserverFunc(func(ev *Event) {
		if !first && ev.Seq != last+1 {
			t.Fatalf("seq jumped %d -> %d", last, ev.Seq)
		}
		last = ev.Seq
		first = false
	}))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestObserverEffectiveAddress(t *testing.T) {
	b := isa.NewBuilder("ea")
	addr := b.Global("g", 32, 8, false)
	b.Ldiq(1, int64(addr))
	b.Store(isa.OpStq, 1, 1, 16)
	b.Load(isa.OpLdq, 2, 1, 16)
	b.Halt()
	m, _ := New(b.MustProgram())
	var got []uint64
	m.AddObserver(ObserverFunc(func(ev *Event) {
		if isa.MemWidth(ev.Inst.Op) > 0 {
			got = append(got, ev.Addr)
		}
	}))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := addr + 16
	if len(got) != 2 || got[0] != want || got[1] != want {
		t.Errorf("EAs = %#v, want two of %#x", got, want)
	}
}

func TestWriteSymbol(t *testing.T) {
	b := isa.NewBuilder("sym")
	addr := b.Global("input", 16, 8, false)
	b.Ldiq(1, int64(addr))
	b.Load(isa.OpLdq, 2, 1, 0)
	b.Load(isa.OpLdq, 3, 1, 8)
	b.Print(2)
	b.Print(3)
	b.Halt()
	m, _ := New(b.MustProgram())
	if err := m.WriteSymbolInt64s("input", []int64{-5, 77}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntOutput[0] != -5 || res.IntOutput[1] != 77 {
		t.Errorf("symbol injection: %v", res.IntOutput)
	}
	if err := m.WriteSymbolInt64s("input", make([]int64, 3)); err == nil {
		t.Error("overflow write not rejected")
	}
	if err := m.WriteSymbol("nope", nil); err == nil {
		t.Error("missing symbol not rejected")
	}
}

func TestHaltDeliversEvent(t *testing.T) {
	b := isa.NewBuilder("h")
	b.Halt()
	m, _ := New(b.MustProgram())
	saw := false
	m.AddObserver(ObserverFunc(func(ev *Event) {
		if ev.Inst.Op == isa.OpHalt {
			saw = true
		}
	}))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !saw {
		t.Error("HALT not observed")
	}
}

// countBatches is a native BatchObserver that tallies events and
// batch sizes.
type countBatches struct {
	events  uint64
	batches int
	maxLen  int
}

func (c *countBatches) ObserveBatch(evs []Event) {
	c.batches++
	c.events += uint64(len(evs))
	if len(evs) > c.maxLen {
		c.maxLen = len(evs)
	}
}

// TestBatchObserverEquivalence: a native BatchObserver and an adapted
// per-event Observer attached to the same run see the same event
// stream, and both see every retired instruction. sumProgram(4000)
// retires ~16k instructions, so delivery spans multiple slabs.
func TestBatchObserverEquivalence(t *testing.T) {
	m, _ := New(sumProgram(4000))
	batch := &countBatches{}
	var perEvent uint64
	m.AddBatchObserver(batch)
	m.AddObserver(ObserverFunc(func(ev *Event) { perEvent++ }))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if batch.events != res.Instructions {
		t.Errorf("batch observer saw %d events, result says %d", batch.events, res.Instructions)
	}
	if perEvent != res.Instructions {
		t.Errorf("adapted observer saw %d events, result says %d", perEvent, res.Instructions)
	}
	if batch.batches < 2 {
		t.Errorf("expected multiple batches for %d instructions, got %d", res.Instructions, batch.batches)
	}
	if batch.maxLen > BatchSize {
		t.Errorf("batch of %d events exceeds BatchSize %d", batch.maxLen, BatchSize)
	}
}

// TestBatchSeqContinuity: Seq numbers are contiguous within and
// across batch boundaries.
func TestBatchSeqContinuity(t *testing.T) {
	m, _ := New(sumProgram(3000))
	var last uint64
	m.AddBatchObserver(BatchObserverFunc(func(evs []Event) {
		for i := range evs {
			if last != 0 && evs[i].Seq != last+1 {
				t.Fatalf("seq jumped %d -> %d", last, evs[i].Seq)
			}
			last = evs[i].Seq
		}
	}))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if last != res.Instructions-1 {
		t.Errorf("final seq %d, want %d (Seq starts at 0)", last, res.Instructions-1)
	}
}

// TestBatchFlushOnError: the partial slab is flushed before an
// erroring run returns, so observers still see every retired
// instruction on the trap and fuel-exhaustion paths.
func TestBatchFlushOnError(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("loop")
	b.Branch(isa.OpBr, 0, "loop")
	b.Halt()
	m, _ := New(b.MustProgram())
	m.Fuel = BatchSize + 37 // lands mid-slab
	batch := &countBatches{}
	m.AddBatchObserver(batch)
	res, err := m.Run()
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("want fuel exhaustion, got %v", err)
	}
	if batch.events != res.Instructions {
		t.Errorf("batch observer saw %d events, result says %d", batch.events, res.Instructions)
	}
}

// TestBatchSlabRecycling pins the Event reuse contract: the slice
// handed to ObserveBatch is recycled once the callback returns, so an
// observer that retains it sees the data overwritten by later
// batches. Observers must copy what they keep.
func TestBatchSlabRecycling(t *testing.T) {
	m, _ := New(sumProgram(4000))
	var retained []Event
	var firstSeq uint64
	m.AddBatchObserver(BatchObserverFunc(func(evs []Event) {
		if retained == nil {
			retained = evs // MISUSE: retaining the slab past the callback
			firstSeq = evs[0].Seq
		}
	}))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if retained == nil {
		t.Fatal("no batches delivered")
	}
	if retained[0].Seq == firstSeq {
		t.Error("retained slab still holds first-batch data; recycling contract not exercised")
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	p := sumProgram(int64(b.N))
	m, _ := New(p)
	m.Fuel = uint64(b.N)*4 + 16
	b.ResetTimer()
	if _, err := m.Run(); err != nil && !errors.Is(err, ErrFuelExhausted) {
		b.Fatal(err)
	}
}

// TestRunContextCancel: a canceled context stops an unbounded run
// promptly (within CancelCheckInterval instructions) with an error
// wrapping context.Canceled, and the committed-instruction prefix is
// still delivered to observers.
func TestRunContextCancel(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("loop")
	b.Branch(isa.OpBr, 0, "loop")
	b.Halt()
	m, _ := New(b.MustProgram())
	var observed uint64
	m.AddBatchObserver(BatchObserverFunc(func(evs []Event) {
		observed += uint64(len(evs))
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Instructions > CancelCheckInterval {
		t.Errorf("ran %d instructions after cancellation, want <= %d",
			res.Instructions, CancelCheckInterval)
	}
	if observed != res.Instructions {
		t.Errorf("observers saw %d of %d committed instructions", observed, res.Instructions)
	}
}

// TestRunContextDeadline: an already-expired deadline behaves like the
// cancel path and reports context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("loop")
	b.Branch(isa.OpBr, 0, "loop")
	b.Halt()
	m, _ := New(b.MustProgram())
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, err := m.RunContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestRunContextCompletesNormally: a live context does not disturb a
// normal run.
func TestRunContextCompletesNormally(t *testing.T) {
	m, _ := New(sumProgram(100))
	res, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IntOutput) != 1 || res.IntOutput[0] != 4950 {
		t.Fatalf("output = %v, want [4950]", res.IntOutput)
	}
}
