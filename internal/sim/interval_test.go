package sim

import (
	"reflect"
	"testing"
)

type segmentRecorder struct {
	segs  [][2]uint64 // [start seq, one past end seq] per forwarded segment
	edges []uint64    // boundary end seqs, in firing order
	idxs  []int
}

func (r *segmentRecorder) ObserveBatch(evs []Event) {
	r.segs = append(r.segs, [2]uint64{evs[0].Seq, evs[len(evs)-1].Seq + 1})
}

func seqEvents(start, n uint64) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i].Seq = start + uint64(i)
	}
	return evs
}

// TestIntervalSplitter checks the two contracts: forwarded segments
// never straddle an interval edge, and the boundary callback fires
// exactly once per completed interval with the right index and end.
func TestIntervalSplitter(t *testing.T) {
	const size = 32
	for _, total := range []uint64{0, 1, size - 1, size, size + 1, 3 * size, 3*size + 7} {
		rec := &segmentRecorder{}
		s := NewIntervalSplitter(size, 0, rec, func(idx int, end uint64) {
			rec.idxs = append(rec.idxs, idx)
			rec.edges = append(rec.edges, end)
		})
		// Deliver in uneven slabs, including ones spanning several edges.
		for lo := uint64(0); lo < total; {
			n := uint64(13)
			if lo%3 == 0 {
				n = 2*size + 5
			}
			if lo+n > total {
				n = total - lo
			}
			s.ObserveBatch(seqEvents(lo, n))
			lo += n
		}
		s.Flush(total)

		for _, seg := range rec.segs {
			if seg[0]/size != (seg[1]-1)/size {
				t.Errorf("total=%d: segment [%d,%d) straddles an edge", total, seg[0], seg[1])
			}
		}
		var wantEdges []uint64
		var wantIdxs []int
		for e, i := uint64(size), 0; e < total; e, i = e+size, i+1 {
			wantEdges, wantIdxs = append(wantEdges, e), append(wantIdxs, i)
		}
		if total > 0 {
			wantEdges = append(wantEdges, total)
			wantIdxs = append(wantIdxs, len(wantIdxs))
		}
		if !reflect.DeepEqual(rec.edges, wantEdges) || !reflect.DeepEqual(rec.idxs, wantIdxs) {
			t.Errorf("total=%d: boundaries %v idx %v, want %v idx %v",
				total, rec.edges, rec.idxs, wantEdges, wantIdxs)
		}
	}
}

// TestIntervalSplitterAlignedStart: a splitter starting mid-stream on
// an interval edge numbers its intervals from that offset.
func TestIntervalSplitterAlignedStart(t *testing.T) {
	const size = 16
	rec := &segmentRecorder{}
	s := NewIntervalSplitter(size, 4*size, rec, func(idx int, end uint64) {
		rec.idxs = append(rec.idxs, idx)
		rec.edges = append(rec.edges, end)
	})
	s.ObserveBatch(seqEvents(4*size, 2*size+3))
	s.Flush(6*size + 3)
	if want := []int{4, 5, 6}; !reflect.DeepEqual(rec.idxs, want) {
		t.Errorf("indices %v, want %v", rec.idxs, want)
	}
	if want := []uint64{5 * size, 6 * size, 6*size + 3}; !reflect.DeepEqual(rec.edges, want) {
		t.Errorf("edges %v, want %v", rec.edges, want)
	}
}

func TestIntervalSplitterPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero size":       func() { NewIntervalSplitter(0, 0, nil, nil) },
		"unaligned start": func() { NewIntervalSplitter(16, 8, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
