// Package sim is the VRISC64 functional simulator. It plays the role
// ATOM played in the paper: it executes a compiled program and hands
// every committed instruction to observer hooks (instruction pointer,
// opcode, effective address, branch outcome), from which the
// characterization framework builds instruction mixes, load-coverage
// curves, cache and branch-predictor simulations, and dependence-chain
// analyses.
package sim

import (
	"context"
	"errors"
	"fmt"

	"bioperfload/internal/isa"
	"bioperfload/internal/mem"
)

// Event describes one committed dynamic instruction. Events are
// delivered in slabs whose storage is recycled as soon as the batch
// callback returns: observers must not retain the slab slice or any
// *Event pointing into it past the callback — copy out whatever must
// survive. TestBatchSlabRecycling pins this contract.
type Event struct {
	Seq    uint64 // dynamic instruction number, starting at 0
	PC     int32  // static instruction index
	Inst   *isa.Inst
	Addr   uint64 // effective address for loads/stores, else 0
	Taken  bool   // for conditional branches
	Target int32  // next PC actually executed
}

// Observer receives committed-instruction events one at a time.
type Observer interface {
	Observe(ev *Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev *Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev *Event) { f(ev) }

// BatchSize is the slab capacity: committed instructions accumulate
// into fixed-size slabs of this many events before observers run, so
// the per-instruction interface-dispatch cost is paid once per slab
// rather than once per instruction.
const BatchSize = 4096

// BatchObserver receives committed-instruction events a slab at a
// time, in commit order. The slab is reused for the next batch the
// moment ObserveBatch returns (see Event).
type BatchObserver interface {
	ObserveBatch(evs []Event)
}

// BatchObserverFunc adapts a function to the BatchObserver interface.
type BatchObserverFunc func(evs []Event)

// ObserveBatch implements BatchObserver.
func (f BatchObserverFunc) ObserveBatch(evs []Event) { f(evs) }

// batchAdapter delivers a slab to a per-event Observer, preserving
// the legacy one-call-per-instruction API on top of batched delivery.
type batchAdapter struct{ o Observer }

func (b batchAdapter) ObserveBatch(evs []Event) {
	for i := range evs {
		b.o.Observe(&evs[i])
	}
}

// ErrFuelExhausted is returned when the instruction budget runs out
// before the program halts.
var ErrFuelExhausted = errors.New("sim: instruction budget exhausted")

// Trap describes a runtime fault (divide by zero, bad PC).
type Trap struct {
	PC  int32
	Msg string
}

func (t *Trap) Error() string { return fmt.Sprintf("sim: trap at pc=%d: %s", t.PC, t.Msg) }

// Result summarizes a completed run.
type Result struct {
	Instructions uint64
	IntOutput    []int64   // values emitted by PRINT
	FPOutput     []float64 // values emitted by PRINTF
	ExitCode     int64     // r0 at HALT
}

// Machine executes one program. Create with New, then Run.
type Machine struct {
	prog *isa.Program
	Mem  *mem.Memory
	R    [isa.NumIntRegs]int64
	F    [isa.NumFPRegs]float64
	PC   int32

	// Fuel is the maximum number of instructions to execute; 0 means
	// DefaultFuel. Run returns ErrFuelExhausted when it is consumed.
	Fuel uint64

	observers []BatchObserver
	slab      []Event // recycled event slab shared by all observers

	// Sampling window (SetSampling): when smpPeriod > 0, only the
	// first smpObserve committed instructions of every smpPeriod-sized
	// window are delivered to observers.
	smpObserve uint64
	smpPeriod  uint64
}

// DefaultFuel bounds runaway programs (10 billion instructions).
const DefaultFuel = 10_000_000_000

// New creates a machine with the program loaded: data initializers are
// applied, the stack pointer is set, and the PC is at the entry point.
func New(p *isa.Program) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{prog: p, Mem: mem.New(), PC: p.Entry}
	for _, di := range p.Init {
		m.Mem.StoreBytes(di.Addr, di.Bytes)
	}
	m.R[isa.RegSP] = isa.StackTop
	// The entry's return address points at a HALT we rely on the
	// compiler to place; hand-built programs must HALT explicitly.
	return m, nil
}

// Program returns the loaded program.
func (m *Machine) Program() *isa.Program { return m.prog }

// AddObserver registers an observer for every committed instruction.
// An observer that also implements BatchObserver receives slabs
// directly, skipping the per-event adapter.
func (m *Machine) AddObserver(o Observer) {
	if bo, ok := o.(BatchObserver); ok {
		m.observers = append(m.observers, bo)
		return
	}
	m.observers = append(m.observers, batchAdapter{o})
}

// AddBatchObserver registers a slab-at-a-time observer.
func (m *Machine) AddBatchObserver(o BatchObserver) {
	m.observers = append(m.observers, o)
}

// WriteSymbol copies raw bytes into the named global. It is how Go
// test harnesses inject input datasets (sequences, HMM parameters)
// into the simulated address space before Run.
func (m *Machine) WriteSymbol(name string, b []byte) error {
	s, ok := m.prog.Symbol(name)
	if !ok {
		return fmt.Errorf("sim: no symbol %q in %s", name, m.prog.Name)
	}
	if uint64(len(b)) > s.Size {
		return fmt.Errorf("sim: %d bytes exceed symbol %q size %d", len(b), name, s.Size)
	}
	m.Mem.StoreBytes(s.Addr, b)
	return nil
}

// WriteSymbolInt64s stores vs into the named int64-element global.
func (m *Machine) WriteSymbolInt64s(name string, vs []int64) error {
	s, ok := m.prog.Symbol(name)
	if !ok {
		return fmt.Errorf("sim: no symbol %q in %s", name, m.prog.Name)
	}
	if uint64(len(vs))*8 > s.Size {
		return fmt.Errorf("sim: %d int64s exceed symbol %q size %d", len(vs), name, s.Size)
	}
	for i, v := range vs {
		m.Mem.WriteInt64(s.Addr+uint64(i)*8, v)
	}
	return nil
}

// WriteSymbolFloat64s stores vs into the named float64-element global.
func (m *Machine) WriteSymbolFloat64s(name string, vs []float64) error {
	s, ok := m.prog.Symbol(name)
	if !ok {
		return fmt.Errorf("sim: no symbol %q in %s", name, m.prog.Name)
	}
	if uint64(len(vs))*8 > s.Size {
		return fmt.Errorf("sim: %d float64s exceed symbol %q size %d", len(vs), name, s.Size)
	}
	for i, v := range vs {
		m.Mem.WriteFloat64(s.Addr+uint64(i)*8, v)
	}
	return nil
}

// ReadSymbolInt64s reads n int64 elements from the named global.
func (m *Machine) ReadSymbolInt64s(name string, n int) ([]int64, error) {
	s, ok := m.prog.Symbol(name)
	if !ok {
		return nil, fmt.Errorf("sim: no symbol %q in %s", name, m.prog.Name)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Mem.ReadInt64(s.Addr + uint64(i)*8)
	}
	return out, nil
}

// Run executes until HALT, a trap, or fuel exhaustion.
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// SetSampling restricts observer delivery to the first observe
// committed instructions of every period-instruction window, aligned
// to the committed-instruction count. The gate toggles only at window
// boundaries of the chunked execution loop, so the skipped stretches
// run at bare functional speed with zero per-instruction cost — this
// is what lets a sampled timing model ride a full-length functional
// run. Result.Instructions still counts every committed instruction.
//
// Sampling silently drops events, so it must never be combined with
// observers that need the complete stream (characterization analyses,
// trace recording); only sampling-aware timing models opt in.
// observe == 0, period == 0, or observe >= period disables sampling.
func (m *Machine) SetSampling(observe, period uint64) {
	if observe == 0 || period == 0 || observe >= period {
		m.smpObserve, m.smpPeriod = 0, 0
		return
	}
	m.smpObserve, m.smpPeriod = observe, period
}

// CancelCheckInterval is how many instructions execute between
// context-cancellation checks in RunContext. The check lives outside
// the per-instruction hot loop — execution proceeds in chunks of this
// many instructions — so cancellation support costs nothing per
// instruction while a canceled run still stops within one chunk.
const CancelCheckInterval = 1 << 16

// RunContext executes until HALT, a trap, fuel exhaustion, or context
// cancellation. Cancellation is detected within CancelCheckInterval
// committed instructions; the returned error wraps ctx.Err(), and the
// event slab is flushed first so observers see the full committed
// prefix, exactly as on the trap path.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	fuel := m.Fuel
	if fuel == 0 {
		fuel = DefaultFuel
	}
	res := &Result{}
	insts := m.prog.Insts
	n := int32(len(insts))
	hasObs := len(m.observers) > 0
	if hasObs && m.slab == nil {
		m.slab = make([]Event, 0, BatchSize)
	}
	// flush hands the accumulated slab to every observer, then
	// truncates it for reuse: the backing array is recycled, which is
	// why observers must not retain events past the callback.
	flush := func() {
		if len(m.slab) == 0 {
			return
		}
		for _, o := range m.observers {
			o.ObserveBatch(m.slab)
		}
		m.slab = m.slab[:0]
	}
	// fail flushes events committed before the fault so observers see
	// the complete committed-instruction prefix.
	fail := func(err error) (*Result, error) {
		flush()
		return res, err
	}

	for {
		// obs gates event delivery for this chunk. With sampling
		// active, the chunk is additionally clipped to the current
		// observe/skip window boundary so the gate only toggles here,
		// never inside the hot loop.
		obs := hasObs
		stop := res.Instructions + CancelCheckInterval
		if obs && m.smpPeriod > 0 {
			pos := res.Instructions % m.smpPeriod
			var boundary uint64
			if pos < m.smpObserve {
				boundary = res.Instructions + (m.smpObserve - pos)
			} else {
				obs = false
				boundary = res.Instructions + (m.smpPeriod - pos)
			}
			if stop > boundary {
				stop = boundary
			}
		}
		if stop > fuel {
			stop = fuel
		}
		if !obs {
			// Entering a skip window: hand observers the tail of the
			// previous observed window first, in order.
			flush()
		}
		for res.Instructions < stop {
			pc := m.PC
			if pc < 0 || pc >= n {
				return fail(&Trap{PC: pc, Msg: "pc out of range"})
			}
			in := &insts[pc]
			next := pc + 1
			var addr uint64
			taken := false

			switch in.Op {
			case isa.OpNop:
			case isa.OpAdd:
				m.setR(in.Rd, m.R[in.Ra]+m.src2(in))
			case isa.OpSub:
				m.setR(in.Rd, m.R[in.Ra]-m.src2(in))
			case isa.OpMul:
				m.setR(in.Rd, m.R[in.Ra]*m.src2(in))
			case isa.OpDiv:
				d := m.src2(in)
				if d == 0 {
					return fail(&Trap{PC: pc, Msg: "integer divide by zero"})
				}
				m.setR(in.Rd, m.R[in.Ra]/d)
			case isa.OpRem:
				d := m.src2(in)
				if d == 0 {
					return fail(&Trap{PC: pc, Msg: "integer remainder by zero"})
				}
				m.setR(in.Rd, m.R[in.Ra]%d)
			case isa.OpAnd:
				m.setR(in.Rd, m.R[in.Ra]&m.src2(in))
			case isa.OpOr:
				m.setR(in.Rd, m.R[in.Ra]|m.src2(in))
			case isa.OpXor:
				m.setR(in.Rd, m.R[in.Ra]^m.src2(in))
			case isa.OpSll:
				m.setR(in.Rd, m.R[in.Ra]<<(uint64(m.src2(in))&63))
			case isa.OpSrl:
				m.setR(in.Rd, int64(uint64(m.R[in.Ra])>>(uint64(m.src2(in))&63)))
			case isa.OpSra:
				m.setR(in.Rd, m.R[in.Ra]>>(uint64(m.src2(in))&63))
			case isa.OpCmpEq:
				m.setR(in.Rd, b2i(m.R[in.Ra] == m.src2(in)))
			case isa.OpCmpLt:
				m.setR(in.Rd, b2i(m.R[in.Ra] < m.src2(in)))
			case isa.OpCmpLe:
				m.setR(in.Rd, b2i(m.R[in.Ra] <= m.src2(in)))
			case isa.OpCmpUlt:
				m.setR(in.Rd, b2i(uint64(m.R[in.Ra]) < uint64(m.src2(in))))
			case isa.OpS8Add:
				m.setR(in.Rd, m.R[in.Ra]*8+m.src2(in))
			case isa.OpLda:
				m.setR(in.Rd, m.R[in.Ra]+in.Imm)
			case isa.OpLdiq:
				m.setR(in.Rd, in.Imm)
			case isa.OpCmovEq:
				if m.R[in.Ra] == 0 {
					m.setR(in.Rd, m.R[in.Rb])
				}
			case isa.OpCmovNe:
				if m.R[in.Ra] != 0 {
					m.setR(in.Rd, m.R[in.Rb])
				}
			case isa.OpCmovLt:
				if m.R[in.Ra] < 0 {
					m.setR(in.Rd, m.R[in.Rb])
				}
			case isa.OpCmovLe:
				if m.R[in.Ra] <= 0 {
					m.setR(in.Rd, m.R[in.Rb])
				}
			case isa.OpCmovGt:
				if m.R[in.Ra] > 0 {
					m.setR(in.Rd, m.R[in.Rb])
				}
			case isa.OpCmovGe:
				if m.R[in.Ra] >= 0 {
					m.setR(in.Rd, m.R[in.Rb])
				}
			case isa.OpLdq:
				addr = uint64(m.R[in.Ra] + in.Imm)
				m.setR(in.Rd, m.Mem.ReadInt64(addr))
			case isa.OpLdbu:
				addr = uint64(m.R[in.Ra] + in.Imm)
				m.setR(in.Rd, int64(m.Mem.LoadByte(addr)))
			case isa.OpStq:
				addr = uint64(m.R[in.Ra] + in.Imm)
				m.Mem.WriteInt64(addr, m.R[in.Rb])
			case isa.OpStb:
				addr = uint64(m.R[in.Ra] + in.Imm)
				m.Mem.StoreByte(addr, byte(m.R[in.Rb]))
			case isa.OpLdt:
				addr = uint64(m.R[in.Ra] + in.Imm)
				m.setF(in.Rd, m.Mem.ReadFloat64(addr))
			case isa.OpStt:
				addr = uint64(m.R[in.Ra] + in.Imm)
				m.Mem.WriteFloat64(addr, m.F[in.Rb])
			case isa.OpAddt:
				m.setF(in.Rd, m.F[in.Ra]+m.F[in.Rb])
			case isa.OpSubt:
				m.setF(in.Rd, m.F[in.Ra]-m.F[in.Rb])
			case isa.OpMult:
				m.setF(in.Rd, m.F[in.Ra]*m.F[in.Rb])
			case isa.OpDivt:
				m.setF(in.Rd, m.F[in.Ra]/m.F[in.Rb])
			case isa.OpCmpTeq:
				m.setR(in.Rd, b2i(m.F[in.Ra] == m.F[in.Rb]))
			case isa.OpCmpTlt:
				m.setR(in.Rd, b2i(m.F[in.Ra] < m.F[in.Rb]))
			case isa.OpCmpTle:
				m.setR(in.Rd, b2i(m.F[in.Ra] <= m.F[in.Rb]))
			case isa.OpCvtQT:
				m.setF(in.Rd, float64(m.R[in.Ra]))
			case isa.OpCvtTQ:
				m.setR(in.Rd, int64(m.F[in.Ra]))
			case isa.OpFMov:
				m.setF(in.Rd, m.F[in.Ra])
			case isa.OpFNeg:
				m.setF(in.Rd, -m.F[in.Ra])
			case isa.OpBr:
				next = in.Target
				taken = true
			case isa.OpBeq:
				taken = m.R[in.Ra] == 0
				if taken {
					next = in.Target
				}
			case isa.OpBne:
				taken = m.R[in.Ra] != 0
				if taken {
					next = in.Target
				}
			case isa.OpBlt:
				taken = m.R[in.Ra] < 0
				if taken {
					next = in.Target
				}
			case isa.OpBle:
				taken = m.R[in.Ra] <= 0
				if taken {
					next = in.Target
				}
			case isa.OpBgt:
				taken = m.R[in.Ra] > 0
				if taken {
					next = in.Target
				}
			case isa.OpBge:
				taken = m.R[in.Ra] >= 0
				if taken {
					next = in.Target
				}
			case isa.OpJsr:
				m.setR(in.Rd, int64(pc+1))
				next = in.Target
				taken = true
			case isa.OpRet:
				next = int32(m.R[in.Ra])
				taken = true
			case isa.OpPrint:
				res.IntOutput = append(res.IntOutput, m.R[in.Ra])
			case isa.OpPrintF:
				res.FPOutput = append(res.FPOutput, m.F[in.Ra])
			case isa.OpHalt:
				res.Instructions++
				res.ExitCode = m.R[0]
				if obs {
					m.slab = append(m.slab, Event{Seq: res.Instructions - 1, PC: pc, Inst: in, Target: next})
				}
				flush()
				return res, nil
			default:
				return fail(&Trap{PC: pc, Msg: "illegal opcode " + in.Op.String()})
			}

			if obs {
				m.slab = append(m.slab, Event{
					Seq: res.Instructions, PC: pc, Inst: in,
					Addr: addr, Taken: taken, Target: next,
				})
				if len(m.slab) == BatchSize {
					flush()
				}
			}
			res.Instructions++
			m.PC = next
		}
		if res.Instructions >= fuel {
			return fail(ErrFuelExhausted)
		}
		if err := ctx.Err(); err != nil {
			return fail(fmt.Errorf("sim: %s: %w", m.prog.Name, err))
		}
	}
}

func (m *Machine) setR(rd uint8, v int64) {
	if rd != isa.RZero {
		m.R[rd] = v
	}
	m.R[isa.RZero] = 0
}

func (m *Machine) setF(rd uint8, v float64) {
	if rd != isa.FZero {
		m.F[rd] = v
	}
	m.F[isa.FZero] = 0
}

func (m *Machine) src2(in *isa.Inst) int64 {
	if in.HasImm {
		return in.Imm
	}
	return m.R[in.Rb]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
