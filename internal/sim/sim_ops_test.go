package sim

import (
	"testing"

	"bioperfload/internal/isa"
)

// TestCmovVariantsAll exercises every conditional-move opcode against
// its definition.
func TestCmovVariantsAll(t *testing.T) {
	cases := []struct {
		op   isa.Op
		cond func(int64) bool
	}{
		{isa.OpCmovEq, func(a int64) bool { return a == 0 }},
		{isa.OpCmovNe, func(a int64) bool { return a != 0 }},
		{isa.OpCmovLt, func(a int64) bool { return a < 0 }},
		{isa.OpCmovLe, func(a int64) bool { return a <= 0 }},
		{isa.OpCmovGt, func(a int64) bool { return a > 0 }},
		{isa.OpCmovGe, func(a int64) bool { return a >= 0 }},
	}
	for _, c := range cases {
		for _, a := range []int64{-5, -1, 0, 1, 9} {
			b := isa.NewBuilder("cm")
			b.Ldiq(1, a)   // condition
			b.Ldiq(2, 111) // new value
			b.Ldiq(3, 222) // old value
			b.Op3(c.op, 3, 1, 2)
			b.Print(3)
			b.Halt()
			m, _ := New(b.MustProgram())
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := int64(222)
			if c.cond(a) {
				want = 111
			}
			if res.IntOutput[0] != want {
				t.Errorf("%s with a=%d: got %d, want %d", c.op, a, res.IntOutput[0], want)
			}
		}
	}
}

// TestBranchVariantsAll exercises every conditional-branch opcode.
func TestBranchVariantsAll(t *testing.T) {
	cases := []struct {
		op   isa.Op
		cond func(int64) bool
	}{
		{isa.OpBeq, func(a int64) bool { return a == 0 }},
		{isa.OpBne, func(a int64) bool { return a != 0 }},
		{isa.OpBlt, func(a int64) bool { return a < 0 }},
		{isa.OpBle, func(a int64) bool { return a <= 0 }},
		{isa.OpBgt, func(a int64) bool { return a > 0 }},
		{isa.OpBge, func(a int64) bool { return a >= 0 }},
	}
	for _, c := range cases {
		for _, a := range []int64{-3, 0, 3} {
			b := isa.NewBuilder("br")
			b.Ldiq(1, a)
			b.Branch(c.op, 1, "taken")
			b.Ldiq(2, 0)
			b.Branch(isa.OpBr, 0, "out")
			b.Label("taken")
			b.Ldiq(2, 1)
			b.Label("out")
			b.Print(2)
			b.Halt()
			m, _ := New(b.MustProgram())
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := int64(0)
			if c.cond(a) {
				want = 1
			}
			if res.IntOutput[0] != want {
				t.Errorf("%s with a=%d: got %d, want %d", c.op, a, res.IntOutput[0], want)
			}
		}
	}
}

func TestS8AddSemantics(t *testing.T) {
	b := isa.NewBuilder("s8")
	b.Ldiq(1, 5)
	b.Ldiq(2, 1000)
	b.Op3(isa.OpS8Add, 3, 1, 2) // 5*8 + 1000
	b.Print(3)
	b.OpI(isa.OpS8Add, 4, 1, -8) // 5*8 - 8
	b.Print(4)
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntOutput[0] != 1040 || res.IntOutput[1] != 32 {
		t.Errorf("s8addq: %v", res.IntOutput)
	}
}

func TestFPNegZeroAndSubt(t *testing.T) {
	b := isa.NewBuilder("fp2")
	b.Ldiq(1, 3)
	b.Emit(isa.Inst{Op: isa.OpCvtQT, Rd: 1, Ra: 1})
	b.Ldiq(2, 5)
	b.Emit(isa.Inst{Op: isa.OpCvtQT, Rd: 2, Ra: 2})
	b.Emit(isa.Inst{Op: isa.OpSubt, Rd: 3, Ra: 1, Rb: 2}) // -2.0
	b.Emit(isa.Inst{Op: isa.OpPrintF, Ra: 3})
	b.Emit(isa.Inst{Op: isa.OpMult, Rd: 4, Ra: 3, Rb: 3}) // 4.0
	b.Emit(isa.Inst{Op: isa.OpPrintF, Ra: 4})
	b.Emit(isa.Inst{Op: isa.OpCmpTle, Rd: 5, Ra: 3, Rb: 4}) // -2 <= 4
	b.Print(5)
	b.Emit(isa.Inst{Op: isa.OpCmpTeq, Rd: 6, Ra: 4, Rb: 4})
	b.Print(6)
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FPOutput[0] != -2.0 || res.FPOutput[1] != 4.0 {
		t.Errorf("fp: %v", res.FPOutput)
	}
	if res.IntOutput[0] != 1 || res.IntOutput[1] != 1 {
		t.Errorf("fp compares: %v", res.IntOutput)
	}
}

func TestFPZeroRegister(t *testing.T) {
	b := isa.NewBuilder("fz")
	b.Ldiq(1, 7)
	b.Emit(isa.Inst{Op: isa.OpCvtQT, Rd: isa.FZero, Ra: 1}) // discarded
	b.Emit(isa.Inst{Op: isa.OpAddt, Rd: 2, Ra: isa.FZero, Rb: isa.FZero})
	b.Emit(isa.Inst{Op: isa.OpPrintF, Ra: 2})
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FPOutput[0] != 0 {
		t.Errorf("f31 not hard-wired: %v", res.FPOutput)
	}
}

func TestUpperRegisterFile(t *testing.T) {
	// Registers 32..63 (the Itanium extension) behave as ordinary
	// registers.
	b := isa.NewBuilder("hi")
	b.Ldiq(40, 123)
	b.Ldiq(63, 7)
	b.Op3(isa.OpAdd, 50, 40, 63)
	b.Print(50)
	b.Halt()
	m, _ := New(b.MustProgram())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntOutput[0] != 130 {
		t.Errorf("upper registers: %v", res.IntOutput)
	}
}

func TestRemSemantics(t *testing.T) {
	cases := [][3]int64{{7, 3, 1}, {-7, 3, -1}, {7, -3, 1}, {-7, -3, -1}}
	for _, c := range cases {
		b := isa.NewBuilder("rem")
		b.Ldiq(1, c[0])
		b.Ldiq(2, c[1])
		b.Op3(isa.OpRem, 3, 1, 2)
		b.Print(3)
		b.Halt()
		m, _ := New(b.MustProgram())
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.IntOutput[0] != c[2] {
			t.Errorf("%d %% %d = %d, want %d", c[0], c[1], res.IntOutput[0], c[2])
		}
	}
}

func TestBadPCTraps(t *testing.T) {
	b := isa.NewBuilder("badpc")
	b.Ldiq(1, 9999)
	b.Ret(1) // jump far out of range
	b.Halt()
	m, _ := New(b.MustProgram())
	if _, err := m.Run(); err == nil {
		t.Error("out-of-range PC not trapped")
	}
}
