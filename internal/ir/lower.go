package ir

import (
	"fmt"

	"bioperfload/internal/minic"
)

// GlobalLayout gives the lowering pass the data-segment address and
// alias-region id of one global.
type GlobalLayout struct {
	Addr  uint64
	Index int32 // region id
	Ty    minic.Type
}

// LowerError reports a lowering failure (always a compiler bug or an
// unsupported construct, since sema ran first).
type LowerError struct {
	File string
	Line int32
	Msg  string
}

func (e *LowerError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type lowerer struct {
	file    *minic.File
	info    *minic.Info
	globals map[string]GlobalLayout
	prog    *Program

	fn     *Func
	cur    *Block
	breaks []int32 // innermost-loop break target block ids
	conts  []int32 // innermost-loop continue target block ids

	// Per-function symbol bindings, keyed by sema's per-function
	// local index / parameter position.
	paramVals  []Value
	localVals  map[int]Value
	localSlots map[int]int32
	localTypes map[int]minic.Type
	nextLocal  int
}

// Lower converts a checked MiniC file to IR. globals must contain a
// layout for every global in the file.
func Lower(f *minic.File, info *minic.Info, globals map[string]GlobalLayout) (*Program, error) {
	l := &lowerer{
		file: f, info: info, globals: globals,
		prog: &Program{
			Name:      f.Name,
			FuncIndex: make(map[string]int32),
		},
	}
	for _, g := range f.Globals {
		if _, ok := globals[g.Name]; !ok {
			return nil, &LowerError{File: f.Name, Line: g.Line, Msg: "no layout for global " + g.Name}
		}
		l.prog.GlobalNames = append(l.prog.GlobalNames, g.Name)
	}
	for i, fd := range f.Funcs {
		l.prog.FuncIndex[fd.Name] = int32(i)
	}
	for _, fd := range f.Funcs {
		fn, err := l.lowerFunc(fd)
		if err != nil {
			return nil, err
		}
		l.prog.Funcs = append(l.prog.Funcs, fn)
	}
	return l.prog, nil
}

func (l *lowerer) bug(line int32, format string, args ...any) error {
	panic(&LowerError{File: l.file.Name, Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (l *lowerer) emit(in Instr) Value {
	l.cur.Instrs = append(l.cur.Instrs, in)
	return in.Dst
}

func (l *lowerer) setTerm(in Instr) {
	l.cur.Term = in
}

func (l *lowerer) constI(v int64, line int32) Value {
	dst := l.fn.NewValue(false)
	l.emit(Instr{Op: OpConstI, Dst: dst, A: NoValue, B: NoValue, Imm: v, Line: line})
	return dst
}

func (l *lowerer) constF(v float64, line int32) Value {
	dst := l.fn.NewValue(true)
	l.emit(Instr{Op: OpConstF, Dst: dst, A: NoValue, B: NoValue, FImm: v, Line: line})
	return dst
}

func (l *lowerer) op2(op Op, a, b Value, isFloat bool, line int32) Value {
	dst := l.fn.NewValue(isFloat)
	l.emit(Instr{Op: op, Dst: dst, A: a, B: b, Line: line})
	return dst
}

func (l *lowerer) move(dst, src Value, line int32) {
	l.emit(Instr{Op: OpMove, Dst: dst, A: src, B: NoValue, Line: line})
}

func (l *lowerer) lowerFunc(fd *minic.FuncDecl) (fn *Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*LowerError); ok {
				err = le
				return
			}
			panic(r)
		}
	}()
	l.fn = &Func{
		Name:     fd.Name,
		RetFloat: fd.Ret == minic.TypeDouble,
		HasRet:   fd.Ret != minic.TypeVoid,
		Line:     fd.Line,
	}
	l.cur = l.fn.NewBlock()
	l.nextLocal = 0
	l.breaks = l.breaks[:0]
	l.conts = l.conts[:0]

	// Parameters get values bound by the code generator.
	for _, p := range fd.Params {
		isF := p.Ty.Base == minic.TypeDouble && !p.Ty.IsPtr
		v := l.fn.NewValue(isF)
		l.fn.Params = append(l.fn.Params, ParamInfo{
			Val: v, IsFloat: isF, IsPtr: p.Ty.IsPtr, Name: p.Name,
		})
	}
	// Bind the sema Syms for parameters: sema assigned Index =
	// position. We need the actual *Sym pointers; they are reachable
	// through info.Refs when used. Instead of chasing them, we keep
	// a name->Value map per function for params and locals via Sym
	// pointers discovered lazily.
	l.paramVals = make([]Value, len(fd.Params))
	for i := range fd.Params {
		l.paramVals[i] = l.fn.Params[i].Val
	}
	l.localVals = make(map[int]Value)
	l.localSlots = make(map[int]int32)
	l.localTypes = make(map[int]minic.Type)

	l.lowerBlockStmt(fd.Body)

	// Fall-off-the-end: synthesize a return.
	if !l.cur.Term.IsTerm() {
		if l.fn.HasRet {
			var zero Value
			if l.fn.RetFloat {
				zero = l.constF(0, fd.Line)
			} else {
				zero = l.constI(0, fd.Line)
			}
			l.setTerm(Instr{Op: OpRet, Dst: NoValue, A: zero, B: NoValue, Line: fd.Line})
		} else {
			l.setTerm(Instr{Op: OpRet, Dst: NoValue, A: NoValue, B: NoValue, Line: fd.Line})
		}
	}
	// Terminate any dangling (unreachable) blocks.
	for _, b := range l.fn.Blocks {
		if !b.Term.IsTerm() {
			b.Term = Instr{Op: OpRet, Dst: NoValue, A: NoValue, B: NoValue, Line: fd.Line}
		}
	}
	if err := l.fn.Validate(); err != nil {
		return nil, err
	}
	return l.fn, nil
}

// symValue returns the virtual register bound to a scalar local or
// parameter. Sema assigns local indices in source order, which is also
// lowering order, so the two numberings agree.
func (l *lowerer) symValue(sym *minic.Sym, line int32) Value {
	switch sym.Kind {
	case minic.SymParam:
		return l.paramVals[sym.Index]
	case minic.SymLocal:
		v, ok := l.localVals[sym.Index]
		if !ok {
			l.bug(line, "local %s used before its declaration was lowered", sym.Name)
		}
		return v
	default:
		l.bug(line, "symValue of global %s", sym.Name)
		return NoValue
	}
}

// memTarget describes a resolved memory object base.
type memTarget struct {
	base   Value
	region Region
	elem   minic.BaseType
}

// arrayBase resolves the base address and alias region for an array or
// pointer symbol.
func (l *lowerer) arrayBase(sym *minic.Sym, line int32) memTarget {
	switch sym.Kind {
	case minic.SymGlobal:
		g := l.globals[sym.Name]
		base := l.constI(int64(g.Addr), line)
		return memTarget{base: base, region: Region{Kind: RegionGlobal, ID: g.Index}, elem: sym.Ty.Base}
	case minic.SymParam:
		return memTarget{
			base:   l.paramVals[sym.Index],
			region: Region{Kind: RegionParam, ID: int32(sym.Index)},
			elem:   sym.Ty.Base,
		}
	default: // local array
		slot, ok := l.localSlots[sym.Index]
		if !ok {
			l.bug(line, "local array %s used before declaration lowering", sym.Name)
		}
		dst := l.fn.NewValue(false)
		l.emit(Instr{Op: OpFrameAddr, Dst: dst, A: NoValue, B: NoValue, Sym: slot, Line: line})
		return memTarget{base: dst, region: Region{Kind: RegionStack, ID: slot}, elem: sym.Ty.Base}
	}
}

// --- statements ---

func (l *lowerer) lowerBlockStmt(b *minic.Block) {
	for _, s := range b.Stmts {
		l.lowerStmt(s)
	}
}

func (l *lowerer) afterTerm(line int32) {
	// Statements after a terminator go to an unreachable block.
	l.cur = l.fn.NewBlock()
	_ = line
}

func (l *lowerer) lowerStmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.DeclStmt:
		l.lowerDecl(st)
	case *minic.ExprStmt:
		l.lowerExpr(st.X)
	case *minic.Block:
		l.lowerBlockStmt(st)
	case *minic.If:
		l.lowerIf(st)
	case *minic.While:
		l.lowerWhile(st)
	case *minic.For:
		l.lowerFor(st)
	case *minic.Return:
		if st.X != nil {
			v, isF := l.lowerExpr(st.X)
			v = l.convert(v, isF, l.fn.RetFloat, st.Line)
			l.setTerm(Instr{Op: OpRet, Dst: NoValue, A: v, B: NoValue, Line: st.Line})
		} else {
			l.setTerm(Instr{Op: OpRet, Dst: NoValue, A: NoValue, B: NoValue, Line: st.Line})
		}
		l.afterTerm(st.Line)
	case *minic.Break:
		l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue,
			True: l.breaks[len(l.breaks)-1], Line: st.Line})
		l.afterTerm(st.Line)
	case *minic.Continue:
		l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue,
			True: l.conts[len(l.conts)-1], Line: st.Line})
		l.afterTerm(st.Line)
	default:
		l.bug(0, "unknown statement %T", s)
	}
}

func (l *lowerer) lowerDecl(st *minic.DeclStmt) {
	idx := l.nextLocal
	l.nextLocal++
	l.localTypes[idx] = st.Ty
	if st.Ty.IsArray {
		slot := int32(len(l.fn.Frame))
		l.fn.Frame = append(l.fn.Frame, FrameSlot{
			Size: st.Ty.ArrayN * int64(st.Ty.Base.ElemSize()),
			Name: st.Name,
		})
		l.localSlots[idx] = slot
		return
	}
	v := l.fn.NewValue(st.Ty.Base == minic.TypeDouble)
	l.localVals[idx] = v
	if st.Init != nil {
		rv, isF := l.lowerExpr(st.Init)
		rv = l.convert(rv, isF, st.Ty.Base == minic.TypeDouble, st.Line)
		l.move(v, rv, st.Line)
	} else {
		// Deterministic zero initialization (MiniC semantics).
		if st.Ty.Base == minic.TypeDouble {
			l.move(v, l.constF(0, st.Line), st.Line)
		} else {
			l.move(v, l.constI(0, st.Line), st.Line)
		}
	}
}

func (l *lowerer) lowerIf(st *minic.If) {
	cond := l.lowerCond(st.Cond)
	thenB := l.fn.NewBlock()
	var elseB *Block
	joinB := l.fn.NewBlock()
	if st.Else != nil {
		elseB = l.fn.NewBlock()
		l.setTerm(Instr{Op: OpBranch, Dst: NoValue, A: cond, B: NoValue,
			True: thenB.ID, False: elseB.ID, Line: st.Line})
	} else {
		l.setTerm(Instr{Op: OpBranch, Dst: NoValue, A: cond, B: NoValue,
			True: thenB.ID, False: joinB.ID, Line: st.Line})
	}
	l.cur = thenB
	l.lowerStmt(st.Then)
	if !l.cur.Term.IsTerm() {
		l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: joinB.ID, Line: st.Line})
	}
	if st.Else != nil {
		l.cur = elseB
		l.lowerStmt(st.Else)
		if !l.cur.Term.IsTerm() {
			l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: joinB.ID, Line: st.Line})
		}
	}
	l.cur = joinB
}

func (l *lowerer) lowerWhile(st *minic.While) {
	headB := l.fn.NewBlock()
	bodyB := l.fn.NewBlock()
	exitB := l.fn.NewBlock()
	l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: headB.ID, Line: st.Line})
	l.cur = headB
	cond := l.lowerCond(st.Cond)
	l.setTerm(Instr{Op: OpBranch, Dst: NoValue, A: cond, B: NoValue,
		True: bodyB.ID, False: exitB.ID, Line: st.Line})
	l.breaks = append(l.breaks, exitB.ID)
	l.conts = append(l.conts, headB.ID)
	l.cur = bodyB
	l.lowerStmt(st.Body)
	if !l.cur.Term.IsTerm() {
		l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: headB.ID, Line: st.Line})
	}
	l.breaks = l.breaks[:len(l.breaks)-1]
	l.conts = l.conts[:len(l.conts)-1]
	l.cur = exitB
}

func (l *lowerer) lowerFor(st *minic.For) {
	if st.Init != nil {
		l.lowerStmt(st.Init)
	}
	headB := l.fn.NewBlock()
	bodyB := l.fn.NewBlock()
	postB := l.fn.NewBlock()
	exitB := l.fn.NewBlock()
	l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: headB.ID, Line: st.Line})
	l.cur = headB
	if st.Cond != nil {
		cond := l.lowerCond(st.Cond)
		l.setTerm(Instr{Op: OpBranch, Dst: NoValue, A: cond, B: NoValue,
			True: bodyB.ID, False: exitB.ID, Line: st.Line})
	} else {
		l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: bodyB.ID, Line: st.Line})
	}
	l.breaks = append(l.breaks, exitB.ID)
	l.conts = append(l.conts, postB.ID)
	l.cur = bodyB
	l.lowerStmt(st.Body)
	if !l.cur.Term.IsTerm() {
		l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: postB.ID, Line: st.Line})
	}
	l.cur = postB
	if st.Post != nil {
		l.lowerExpr(st.Post)
	}
	l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: headB.ID, Line: st.Line})
	l.breaks = l.breaks[:len(l.breaks)-1]
	l.conts = l.conts[:len(l.conts)-1]
	l.cur = exitB
}

// lowerCond lowers an expression used as a truth value to an int
// value (nonzero = true).
func (l *lowerer) lowerCond(e minic.Expr) Value {
	v, isF := l.lowerExpr(e)
	if isF {
		z := l.constF(0, lineOf(e))
		return l.op2(OpFCmpNE, v, z, false, lineOf(e))
	}
	return v
}

// convert coerces v between register classes.
func (l *lowerer) convert(v Value, isFloat, wantFloat bool, line int32) Value {
	if isFloat == wantFloat {
		return v
	}
	if wantFloat {
		return l.op2(OpCvtIF, v, NoValue, true, line)
	}
	return l.op2(OpCvtFI, v, NoValue, false, line)
}

func lineOf(e minic.Expr) int32 {
	switch x := e.(type) {
	case *minic.IntLit:
		return x.Line
	case *minic.FloatLit:
		return x.Line
	case *minic.VarRef:
		return x.Line
	case *minic.Index:
		return x.Line
	case *minic.Unary:
		return x.Line
	case *minic.Cast:
		return x.Line
	case *minic.Binary:
		return x.Line
	case *minic.Logical:
		return x.Line
	case *minic.Cond:
		return x.Line
	case *minic.Assign2:
		return x.Line
	case *minic.IncDec:
		return x.Line
	case *minic.Call:
		return x.Line
	}
	return 0
}
