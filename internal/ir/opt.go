package ir

import (
	"fmt"
	"math"
)

// OptOptions selects which passes run. The defaults via O2() mirror
// the paper's "-O3" baseline: everything on. The paper's analysis
// depends on two of these specifically: IfConvert (short register-only
// IF bodies become conditional moves, which only the load-transformed
// sources expose) and Schedule (local list scheduling that may hoist a
// load above a store only with proof of no-alias).
type OptOptions struct {
	Fold      bool // constant folding + algebraic simplification + LVN/CSE
	DCE       bool // global dead-code elimination
	IfConvert bool // CMOV if-conversion of short register-only THEN clauses
	Schedule  bool // local list scheduling with memory disambiguation
	// MaxIfConvert bounds the THEN-clause size eligible for
	// if-conversion (instructions after lowering).
	MaxIfConvert int
	// PressureLimit caps how many simultaneously-live block-local
	// values the scheduler will tolerate before it switches from
	// latency priority to pressure reduction; 0 means the default
	// (16). A register-scarce target (Pentium 4) compiles with a
	// lower limit.
	PressureLimit int
	// GlobalHoist enables triangle load hoisting across basic blocks
	// (the paper's Figure 5 transformation). It is on at O2 but
	// usually blocked by the conservative alias analysis — which is
	// the paper's point.
	GlobalHoist bool
	// RestrictParams assumes pointer parameters are pairwise
	// non-overlapping and distinct from named objects, like declaring
	// every pointer parameter `restrict` (the paper's Itanium
	// experiment). It unblocks GlobalHoist and the scheduler across
	// parameter stores. Unsound for programs that alias their
	// arguments — exactly as in C.
	RestrictParams bool
}

// O0 disables all optimization.
func O0() OptOptions { return OptOptions{} }

// O2 enables the full pipeline (the paper's -O3 analog).
func O2() OptOptions {
	return OptOptions{Fold: true, DCE: true, IfConvert: true, Schedule: true,
		GlobalHoist: true, MaxIfConvert: 4}
}

// defaultPressureLimit caps scheduler run-ahead at six in-flight
// block-local values. The hot kernels keep ~20 loop-carried values
// (pointer parameters, accumulators) in the ~28 allocatable registers,
// so only a handful remain for scheduling temporaries; a larger limit
// lets the scheduler create spill traffic that devours the latency it
// hides (measured directly on the hmmsearch kernel).
const defaultPressureLimit = 6

// Optimize runs the selected passes over the function in place.
func Optimize(f *Func, opts OptOptions) {
	if opts.Fold {
		for _, b := range f.Blocks {
			lvnBlock(f, b)
		}
	}
	if opts.IfConvert {
		ifConvert(f, opts.MaxIfConvert)
		if opts.Fold {
			for _, b := range f.Blocks {
				lvnBlock(f, b)
			}
		}
	}
	if opts.GlobalHoist {
		globalHoistLoads(f, opts.RestrictParams)
		if opts.Fold {
			for _, b := range f.Blocks {
				lvnBlock(f, b)
			}
		}
	}
	if opts.DCE {
		deadCodeElim(f)
		deadDefElim(f)
	}
	if opts.Schedule {
		limit := opts.PressureLimit
		if limit <= 0 {
			limit = defaultPressureLimit
		}
		for _, b := range f.Blocks {
			scheduleBlock(f, b, limit, opts.RestrictParams)
		}
	}
}

// --- Local value numbering: CSE, copy propagation, constant folding ---

type lvnState struct {
	f        *Func
	vnNext   int
	vnOf     map[Value]int
	homeOf   map[int]Value
	exprVN   map[string]int
	constI   map[int]int64
	constF   map[int]float64
	memEpoch int
}

func lvnBlock(f *Func, b *Block) {
	s := &lvnState{
		f:      f,
		vnOf:   make(map[Value]int),
		homeOf: make(map[int]Value),
		exprVN: make(map[string]int),
		constI: make(map[int]int64),
		constF: make(map[int]float64),
	}
	out := b.Instrs[:0]
	for i := range b.Instrs {
		in := b.Instrs[i]
		if s.process(&in) {
			out = append(out, in)
		}
	}
	b.Instrs = out
	// Rewrite terminator operand too.
	if b.Term.A != NoValue && (b.Term.Op == OpBranch || b.Term.Op == OpRet) {
		b.Term.A = s.canon(b.Term.A)
	}
}

func (s *lvnState) vn(v Value) int {
	if n, ok := s.vnOf[v]; ok {
		return n
	}
	s.vnNext++
	n := s.vnNext
	s.vnOf[v] = n
	s.homeOf[n] = v
	return n
}

// canon returns the canonical holder of v's value number, preferring
// an earlier value that still holds it (copy propagation).
func (s *lvnState) canon(v Value) Value {
	n := s.vn(v)
	if h, ok := s.homeOf[n]; ok && s.vnOf[h] == n {
		return h
	}
	return v
}

func (s *lvnState) newVN(dst Value) int {
	s.vnNext++
	n := s.vnNext
	s.vnOf[dst] = n
	s.homeOf[n] = dst
	return n
}

// process rewrites one instruction; it returns false to drop it.
func (s *lvnState) process(in *Instr) bool {
	// Rewrite sources to canonical holders.
	switch in.Op {
	case OpCall:
		for i, a := range in.Args {
			in.Args[i] = s.canon(a)
		}
		s.memEpoch++
		if in.Dst != NoValue {
			s.newVN(in.Dst)
		}
		return true
	case OpPrint:
		in.A = s.canon(in.A)
		s.memEpoch++
		return true
	case OpStore:
		in.A = s.canon(in.A)
		in.B = s.canon(in.B)
		s.memEpoch++
		return true
	case OpCMov:
		in.A = s.canon(in.A)
		in.B = s.canon(in.B)
		s.newVN(in.Dst)
		return true
	case OpNop:
		return false
	}
	if in.A != NoValue {
		in.A = s.canon(in.A)
	}
	if in.B != NoValue {
		in.B = s.canon(in.B)
	}

	switch in.Op {
	case OpConstI:
		key := fmt.Sprintf("ci %d", in.Imm)
		return s.lookupOrDefine(in, key, func(n int) { s.constI[n] = in.Imm })
	case OpConstF:
		key := fmt.Sprintf("cf %x", math.Float64bits(in.FImm))
		return s.lookupOrDefine(in, key, func(n int) { s.constF[n] = in.FImm })
	case OpMove:
		// Copy: destination shares the source's value number.
		n := s.vn(in.A)
		s.vnOf[in.Dst] = n
		if _, ok := s.homeOf[n]; !ok {
			s.homeOf[n] = in.A
		}
		return true
	case OpLoad:
		key := fmt.Sprintf("ld %d %d %d %d %v e%d",
			s.vn(in.A), in.Off, in.Width, in.Region.Kind, in.FloatMem, s.memEpoch)
		return s.lookupOrDefine(in, key, nil)
	case OpFrameAddr:
		key := fmt.Sprintf("fa %d", in.Sym)
		return s.lookupOrDefine(in, key, nil)
	}

	if !in.IsPure() && in.Op != OpDiv && in.Op != OpRem {
		s.newVN(in.Dst)
		return true
	}

	// Try constant folding.
	if folded, ok := s.fold(in); ok {
		*in = folded
		return s.process(in) // re-enter as const/move
	}

	// CSE on the (op, vn(a), vn(b)) key. Div/Rem participate: same
	// operands means same trap behaviour, so reuse is safe.
	key := fmt.Sprintf("%d %d %d", in.Op, s.vn(in.A), s.vnB(in))
	return s.lookupOrDefine(in, key, nil)
}

func (s *lvnState) vnB(in *Instr) int {
	if in.B == NoValue {
		return -1
	}
	return s.vn(in.B)
}

// lookupOrDefine replaces the instruction with a Move when the
// expression is available, otherwise defines a new value number.
func (s *lvnState) lookupOrDefine(in *Instr, key string, onDef func(n int)) bool {
	if n, ok := s.exprVN[key]; ok {
		if h, ok2 := s.homeOf[n]; ok2 && s.vnOf[h] == n {
			*in = Instr{Op: OpMove, Dst: in.Dst, A: h, B: NoValue, Line: in.Line}
			s.vnOf[in.Dst] = n
			return true
		}
	}
	n := s.newVN(in.Dst)
	s.exprVN[key] = n
	if onDef != nil {
		onDef(n)
	}
	return true
}

// fold attempts constant folding and algebraic simplification.
func (s *lvnState) fold(in *Instr) (Instr, bool) {
	aVN, bVN := -1, -1
	if in.A != NoValue {
		aVN = s.vn(in.A)
	}
	if in.B != NoValue {
		bVN = s.vn(in.B)
	}
	ca, aConst := s.constI[aVN]
	cb, bConst := s.constI[bVN]
	fa, aFConst := s.constF[aVN]
	fb, bFConst := s.constF[bVN]

	mkI := func(v int64) (Instr, bool) {
		return Instr{Op: OpConstI, Dst: in.Dst, A: NoValue, B: NoValue, Imm: v, Line: in.Line}, true
	}
	mkF := func(v float64) (Instr, bool) {
		return Instr{Op: OpConstF, Dst: in.Dst, A: NoValue, B: NoValue, FImm: v, Line: in.Line}, true
	}
	mkMove := func(src Value) (Instr, bool) {
		return Instr{Op: OpMove, Dst: in.Dst, A: src, B: NoValue, Line: in.Line}, true
	}

	switch in.Op {
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE:
		if aConst && bConst {
			return mkI(evalIntOp(in.Op, ca, cb))
		}
	case OpS8Add:
		if aConst && bConst {
			return mkI(ca*8 + cb)
		}
	case OpDiv, OpRem:
		if aConst && bConst && cb != 0 {
			return mkI(evalIntOp(in.Op, ca, cb))
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if aFConst && bFConst {
			return mkF(evalFloatOp(in.Op, fa, fb))
		}
	case OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE:
		if aFConst && bFConst {
			return mkI(evalFloatCmp(in.Op, fa, fb))
		}
	case OpFNeg:
		if aFConst {
			return mkF(-fa)
		}
	case OpCvtIF:
		if aConst {
			return mkF(float64(ca))
		}
	case OpCvtFI:
		if aFConst {
			return mkI(int64(fa))
		}
	}

	// Algebraic identities.
	switch in.Op {
	case OpAdd:
		if bConst && cb == 0 {
			return mkMove(in.A)
		}
		if aConst && ca == 0 {
			return mkMove(in.B)
		}
	case OpSub:
		if bConst && cb == 0 {
			return mkMove(in.A)
		}
	case OpMul:
		if bConst {
			switch {
			case cb == 0:
				return mkI(0)
			case cb == 1:
				return mkMove(in.A)
			case cb > 0 && cb&(cb-1) == 0:
				sh := int64(0)
				for v := cb; v > 1; v >>= 1 {
					sh++
				}
				shv := Instr{Op: OpShl, Dst: in.Dst, A: in.A, B: in.B, Line: in.Line}
				// Rewrite B's constant: reuse the const value by
				// noting the shift amount as a new const is not
				// available here, so only fold when cb==1/0;
				// power-of-two strength reduction is handled by
				// codegen's immediate forms instead.
				_ = sh
				_ = shv
			}
		}
		if aConst && ca == 0 {
			return mkI(0)
		}
		if aConst && ca == 1 {
			return mkMove(in.B)
		}
	case OpShl, OpShr:
		if bConst && cb == 0 {
			return mkMove(in.A)
		}
	case OpOr, OpXor:
		if bConst && cb == 0 {
			return mkMove(in.A)
		}
		if aConst && ca == 0 {
			return mkMove(in.B)
		}
	}
	return Instr{}, false
}

func evalIntOp(op Op, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpRem:
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (uint64(b) & 63)
	case OpShr:
		return a >> (uint64(b) & 63)
	case OpCmpEQ:
		return b2i(a == b)
	case OpCmpNE:
		return b2i(a != b)
	case OpCmpLT:
		return b2i(a < b)
	case OpCmpLE:
		return b2i(a <= b)
	case OpCmpGT:
		return b2i(a > b)
	case OpCmpGE:
		return b2i(a >= b)
	}
	return 0
}

func evalFloatOp(op Op, a, b float64) float64 {
	switch op {
	case OpFAdd:
		return a + b
	case OpFSub:
		return a - b
	case OpFMul:
		return a * b
	case OpFDiv:
		return a / b
	}
	return 0
}

func evalFloatCmp(op Op, a, b float64) int64 {
	switch op {
	case OpFCmpEQ:
		return b2i(a == b)
	case OpFCmpNE:
		return b2i(a != b)
	case OpFCmpLT:
		return b2i(a < b)
	case OpFCmpLE:
		return b2i(a <= b)
	case OpFCmpGT:
		return b2i(a > b)
	case OpFCmpGE:
		return b2i(a >= b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// --- Global dead-code elimination ---

func deadCodeElim(f *Func) {
	for {
		used := make(map[Value]bool)
		var buf []Value
		mark := func(in *Instr) {
			buf = buf[:0]
			for _, v := range in.Uses(buf) {
				used[v] = true
			}
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.HasSideEffects() || in.Dst == NoValue {
					mark(in)
				}
			}
			mark(&b.Term)
		}
		// Transitively mark operands of instructions defining used
		// values, iterating until stable within this round.
		for changed := true; changed; {
			changed = false
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Dst != NoValue && used[in.Dst] || in.HasSideEffects() {
						buf = buf[:0]
						for _, v := range in.Uses(buf) {
							if !used[v] {
								used[v] = true
								changed = true
							}
						}
					}
				}
			}
		}
		removed := false
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				if in.Dst != NoValue && !in.HasSideEffects() && !used[in.Dst] {
					removed = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if !removed {
			return
		}
	}
}

// --- CMOV if-conversion ---

// ifConvert turns
//
//	b:  ...; branch c ? T : F
//	T:  (<= max pure, int-destination instructions); jump F
//
// into straight-line code in b ending with conditional moves. This is
// exactly the transformation the compiler can apply to the paper's
// load-transformed sources ("if (temp2 > temp1) temp1 = temp2;") and
// can never apply to the originals, whose THEN clauses store to
// memory.
func ifConvert(f *Func, maxBody int) {
	if maxBody <= 0 {
		maxBody = 4
	}
	preds := countPreds(f)
	for _, b := range f.Blocks {
		if b.Term.Op != OpBranch {
			continue
		}
		t := f.Blocks[b.Term.True]
		joint := b.Term.False
		if t.ID == b.ID || int32(t.ID) == joint {
			continue
		}
		if preds[t.ID] != 1 || t.Term.Op != OpJump || t.Term.True != joint {
			continue
		}
		if len(t.Instrs) == 0 || len(t.Instrs) > maxBody {
			continue
		}
		ok := true
		for i := range t.Instrs {
			in := &t.Instrs[i]
			if !in.IsPure() || in.Op == OpCMov || in.Dst == NoValue || f.IsFloat[in.Dst] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		cond := b.Term.A
		// Clone the body with fresh destinations, then cmov the
		// final value of each original destination.
		rename := make(map[Value]Value)
		finalOf := make(map[Value]Value)
		var order []Value
		for i := range t.Instrs {
			in := t.Instrs[i] // copy
			if in.A != NoValue {
				if nv, ok := rename[in.A]; ok {
					in.A = nv
				}
			}
			if in.B != NoValue {
				if nv, ok := rename[in.B]; ok {
					in.B = nv
				}
			}
			orig := in.Dst
			fresh := f.NewValue(false)
			rename[orig] = fresh
			in.Dst = fresh
			b.Instrs = append(b.Instrs, in)
			if _, seen := finalOf[orig]; !seen {
				order = append(order, orig)
			}
			finalOf[orig] = fresh
		}
		for _, orig := range order {
			b.Instrs = append(b.Instrs, Instr{
				Op: OpCMov, Dst: orig, A: cond, B: finalOf[orig],
				Line: b.Term.Line,
			})
		}
		b.Term = Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue,
			True: joint, Line: b.Term.Line}
		// T is now unreachable; empty it.
		t.Instrs = nil
		preds[joint]-- // T no longer jumps there; b does instead (net same), keep counts safe
		preds[t.ID] = 0
	}
}

func countPreds(f *Func) []int {
	preds := make([]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s]++
		}
	}
	return preds
}

// --- Local list scheduling ---

// latencyOf gives scheduling priorities (not the timing model's
// latencies; these only shape the schedule the way a compiler's
// machine model would).
func latencyOf(op Op) int {
	switch op {
	case OpLoad:
		return 3
	case OpMul:
		return 7
	case OpDiv, OpRem:
		return 20
	case OpFAdd, OpFSub, OpFMul, OpCvtIF, OpCvtFI:
		return 4
	case OpFDiv:
		return 15
	default:
		return 1
	}
}

// memClass returns 0 for non-memory, 1 load, 2 store, 3 barrier.
func memClass(in *Instr) int {
	switch in.Op {
	case OpLoad:
		return 1
	case OpStore:
		return 2
	case OpCall, OpPrint:
		return 3
	case OpDiv, OpRem:
		// Potentially trapping: order against stores/barriers so a
		// trap cannot be reordered past visible effects.
		return 4
	}
	return 0
}

// mayAliasInstr reports whether two memory instructions might touch
// the same bytes. It applies the paper's compiler model: distinct
// named objects never alias; pointer parameters alias everything; the
// same base value with non-overlapping constant offsets is disjoint.
func mayAliasInstr(a, b *Instr) bool { return mayAliasInstrR(a, b, false) }

func scheduleBlock(f *Func, b *Block, pressureLimit int, restrict bool) {
	n := len(b.Instrs)
	if n < 2 {
		return
	}
	succs := make([][]int, n)
	npred := make([]int, n)
	addEdge := func(i, j int) {
		succs[i] = append(succs[i], j)
		npred[j]++
	}

	lastDef := make(map[Value]int)
	lastUses := make(map[Value][]int)
	var memOps []int
	var buf []Value
	for j := 0; j < n; j++ {
		in := &b.Instrs[j]
		buf = buf[:0]
		for _, u := range in.Uses(buf) {
			if d, ok := lastDef[u]; ok {
				addEdge(d, j) // RAW
			}
			lastUses[u] = append(lastUses[u], j)
		}
		if in.Dst != NoValue {
			if d, ok := lastDef[in.Dst]; ok && d != j {
				addEdge(d, j) // WAW
			}
			for _, u := range lastUses[in.Dst] {
				if u != j {
					addEdge(u, j) // WAR
				}
			}
			lastUses[in.Dst] = nil
			lastDef[in.Dst] = j
		}
		mc := memClass(in)
		if mc != 0 {
			for _, i := range memOps {
				pm := memClass(&b.Instrs[i])
				switch {
				case pm == 3 || mc == 3:
					addEdge(i, j) // barriers order everything
				case pm == 4 || mc == 4:
					// Trapping ops order against stores and
					// barriers only.
					if pm == 2 || mc == 2 {
						addEdge(i, j)
					}
				case pm == 1 && mc == 1:
					// load-load: no edge
				default:
					// At least one store: need disambiguation.
					if mayAliasInstrR(&b.Instrs[i], &b.Instrs[j], restrict) {
						addEdge(i, j)
					}
				}
			}
			memOps = append(memOps, j)
		}
	}
	// Terminator dependence: every instruction must precede it; the
	// scheduler keeps Term in place, so nothing to add.

	// Priority: longest latency-weighted path to the end.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, s := range succs[i] {
			if height[s] > h {
				h = height[s]
			}
		}
		height[i] = h + latencyOf(b.Instrs[i].Op)
	}

	// Remaining in-block use counts, for pressure tracking: a value
	// "dies" when its last in-block use is scheduled; values also
	// used outside the block never die here (conservative).
	remaining := make(map[Value]int)
	escapes := make(map[Value]bool)
	defined := make(map[Value]int)
	var ubuf []Value
	for j := 0; j < n; j++ {
		in := &b.Instrs[j]
		ubuf = ubuf[:0]
		for _, u := range in.Uses(ubuf) {
			remaining[u]++
		}
		if in.Dst != NoValue {
			defined[in.Dst] = j
		}
	}
	ubuf = ubuf[:0]
	for _, u := range b.Term.Uses(ubuf) {
		escapes[u] = true
	}
	// Values defined here might be live-out; without global liveness
	// at this point, treat every defined value as escaping unless it
	// is consumed in-block at least once. (Loads/temps in straight
	// lines are consumed; user variables spanning blocks escape.)
	pressure := 0

	// netEffect estimates the pressure change from scheduling j.
	netEffect := func(j int, rem map[Value]int) int {
		in := &b.Instrs[j]
		net := 0
		if in.Dst != NoValue {
			net++
		}
		seen := map[Value]bool{}
		var lbuf []Value
		lbuf = lbuf[:0]
		for _, u := range in.Uses(lbuf) {
			if seen[u] {
				continue
			}
			seen[u] = true
			if rem[u] == 1 && !escapes[u] {
				if _, here := defined[u]; here {
					net--
				}
			}
		}
		return net
	}

	// List scheduling: below the pressure limit pick max height
	// (loads first on ties); above it, prefer pressure-reducing
	// picks.
	scheduled := make([]Instr, 0, n)
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if npred[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(scheduled) < n {
		best := -1
		bestNet := 0
		for _, c := range ready {
			if best == -1 {
				best = c
				bestNet = netEffect(c, remaining)
				continue
			}
			hb, hc := height[best], height[c]
			if pressure >= pressureLimit {
				nc := netEffect(c, remaining)
				if nc < bestNet || (nc == bestNet && hc > hb) ||
					(nc == bestNet && hc == hb && c < best) {
					best = c
					bestNet = nc
				}
				continue
			}
			if hc > hb {
				best = c
				bestNet = netEffect(c, remaining)
				continue
			}
			if hc == hb {
				cb, cc := b.Instrs[best].Op == OpLoad, b.Instrs[c].Op == OpLoad
				if (cc && !cb) || (cb == cc && c < best) {
					best = c
					bestNet = netEffect(c, remaining)
				}
			}
		}
		// Remove best from ready.
		for i, c := range ready {
			if c == best {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		in := &b.Instrs[best]
		ubuf = ubuf[:0]
		for _, u := range in.Uses(ubuf) {
			remaining[u]--
			if remaining[u] == 0 && !escapes[u] {
				if _, here := defined[u]; here {
					pressure--
				}
			}
		}
		if in.Dst != NoValue {
			pressure++
		}
		scheduled = append(scheduled, *in)
		for _, s := range succs[best] {
			npred[s]--
			if npred[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	b.Instrs = scheduled
}
