// Package ir defines the MiniC compiler's intermediate representation
// — three-address code over virtual registers in a control-flow graph
// — together with the optimization passes that give the toolchain its
// "-O3" behaviour: constant folding, local value numbering (CSE +
// redundant load elimination), copy propagation, dead-code
// elimination, CMOV if-conversion, and local list scheduling with
// conservative memory disambiguation.
//
// The last two passes carry the paper's mechanism. If-conversion only
// fires when a guarded assignment targets a register (the paper's
// transformed code), never when the THEN clause stores to memory (the
// paper's original code). The scheduler may hoist a load above a store
// only when the two provably access distinct objects; loads through
// pointer parameters can never be disambiguated from stores through
// other pointer parameters — exactly the "culprit" the paper
// identifies in Section 2.2.2.
package ir

import "fmt"

// Value is a virtual register id. NoValue means "none".
type Value int32

// NoValue marks an absent operand or destination.
const NoValue Value = -1

// Op enumerates IR operations.
type Op uint8

// IR operations.
const (
	OpNop Op = iota

	OpConstI // Dst = Imm
	OpConstF // Dst = FImm
	OpMove   // Dst = A (same class)

	// Integer ALU: Dst = A op B.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic
	// OpS8Add: Dst = A*8 + B (array indexing; Alpha s8addq).
	OpS8Add

	// Integer compares: Dst(int) = A op B.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Float ALU.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg // Dst = -A

	// Float compares: Dst(int) = A op B.
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE

	OpCvtIF // Dst(float) = float(A)
	OpCvtFI // Dst(int) = int(A)

	// Memory: address is A + Off. Width is 1 or 8; FloatMem marks
	// float64 element accesses. Region is the alias class.
	OpLoad  // Dst = mem[A+Off]
	OpStore // mem[A+Off] = B

	// OpFrameAddr: Dst = address of frame slot Sym (a local array).
	OpFrameAddr

	// OpCall: Dst (may be NoValue) = call function Sym with Args.
	OpCall

	// OpCMov: if A != 0 then Dst = B else Dst keeps its value. Dst
	// is therefore also a source. Produced by if-conversion; CC
	// selects the original comparison sense for codegen fusion.
	OpCMov

	OpPrint // print A (int or float per operand class)

	// Terminators.
	OpJump   // goto True
	OpBranch // if A != 0 goto True else goto False
	OpRet    // return A (or NoValue)
)

var opNames = [...]string{
	OpNop: "nop", OpConstI: "consti", OpConstF: "constf", OpMove: "move",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpS8Add: "s8add",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt",
	OpCmpLE: "cmple", OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg:   "fneg",
	OpFCmpEQ: "fcmpeq", OpFCmpNE: "fcmpne", OpFCmpLT: "fcmplt",
	OpFCmpLE: "fcmple", OpFCmpGT: "fcmpgt", OpFCmpGE: "fcmpge",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpLoad: "load", OpStore: "store", OpFrameAddr: "frameaddr",
	OpCall: "call", OpCMov: "cmov", OpPrint: "print",
	OpJump: "jump", OpBranch: "branch", OpRet: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("irop(%d)", uint8(o))
}

// RegionKind classifies what object a memory access touches, for
// static disambiguation.
type RegionKind uint8

// Region kinds.
const (
	// RegionUnknown may alias anything.
	RegionUnknown RegionKind = iota
	// RegionGlobal is a named global object (ID = global index).
	RegionGlobal
	// RegionStack is a local array frame slot (ID = slot index).
	RegionStack
	// RegionParam is memory reached through a pointer parameter
	// (ID = parameter index). Pointer parameters may point to any
	// global, any caller stack slot, or the same object as another
	// pointer parameter — so they disambiguate against nothing.
	// This is the conservatism that defeats compiler load hoisting
	// in the paper.
	RegionParam
)

// Region is the alias class of one memory access.
type Region struct {
	Kind RegionKind
	ID   int32
}

func (r Region) String() string {
	switch r.Kind {
	case RegionGlobal:
		return fmt.Sprintf("g%d", r.ID)
	case RegionStack:
		return fmt.Sprintf("s%d", r.ID)
	case RegionParam:
		return fmt.Sprintf("p%d", r.ID)
	default:
		return "?"
	}
}

// NoAlias reports whether two accesses with these regions provably
// never overlap. Anything involving a pointer parameter or an unknown
// region may alias.
func NoAlias(a, b Region) bool {
	switch {
	case a.Kind == RegionGlobal && b.Kind == RegionGlobal:
		return a.ID != b.ID
	case a.Kind == RegionStack && b.Kind == RegionStack:
		return a.ID != b.ID
	case a.Kind == RegionGlobal && b.Kind == RegionStack,
		a.Kind == RegionStack && b.Kind == RegionGlobal:
		return true
	default:
		return false
	}
}

// Instr is one IR instruction. Branch-style fields live inline to keep
// the representation flat.
type Instr struct {
	Op       Op
	Dst      Value
	A, B     Value
	Imm      int64
	FImm     float64
	Off      int64
	Width    uint8 // memory access bytes (1 or 8)
	FloatMem bool  // float64 memory element
	Region   Region
	Sym      int32   // call target index / frame slot / global index
	Args     []Value // call arguments
	Line     int32
	True     int32 // Jump/Branch target block
	False    int32 // Branch fall-through block
}

// IsTerm reports whether the op ends a basic block.
func (i *Instr) IsTerm() bool {
	return i.Op == OpJump || i.Op == OpBranch || i.Op == OpRet
}

// HasSideEffects reports whether the instruction must be preserved
// even if its result is unused.
func (i *Instr) HasSideEffects() bool {
	switch i.Op {
	case OpStore, OpCall, OpPrint, OpJump, OpBranch, OpRet:
		return true
	case OpDiv, OpRem:
		return true // may trap on zero divisor
	}
	return false
}

// IsPure reports whether the instruction only computes a register
// value from register values (no memory, no traps, no control).
func (i *Instr) IsPure() bool {
	switch i.Op {
	case OpConstI, OpConstF, OpMove, OpAdd, OpSub, OpMul,
		OpAnd, OpOr, OpXor, OpShl, OpShr, OpS8Add,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE,
		OpFAdd, OpFSub, OpFMul, OpFNeg,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE,
		OpCvtIF, OpCvtFI, OpFrameAddr, OpCMov:
		return true
	}
	return false
}

// Uses appends the values the instruction reads to buf and returns it.
func (i *Instr) Uses(buf []Value) []Value {
	add := func(v Value) {
		if v != NoValue {
			buf = append(buf, v)
		}
	}
	switch i.Op {
	case OpConstI, OpConstF, OpFrameAddr, OpJump, OpNop:
	case OpCall:
		for _, a := range i.Args {
			add(a)
		}
	case OpCMov:
		add(i.A)
		add(i.B)
		add(i.Dst) // old value flows through
	case OpStore:
		add(i.A)
		add(i.B)
	default:
		add(i.A)
		add(i.B)
	}
	return buf
}

// Block is a basic block: straight-line instructions plus one
// terminator.
type Block struct {
	ID     int32
	Instrs []Instr
	Term   Instr
}

// Succs returns the successor block ids.
func (b *Block) Succs() []int32 {
	switch b.Term.Op {
	case OpJump:
		return []int32{b.Term.True}
	case OpBranch:
		return []int32{b.Term.True, b.Term.False}
	default:
		return nil
	}
}

// ParamInfo describes one function parameter's IR binding.
type ParamInfo struct {
	Val     Value
	IsFloat bool
	IsPtr   bool
	Name    string
}

// FrameSlot is a local array allocated in the stack frame.
type FrameSlot struct {
	Size int64 // bytes
	Name string
}

// Func is one function in IR form.
type Func struct {
	Name     string
	Params   []ParamInfo
	RetFloat bool
	HasRet   bool
	Blocks   []*Block
	NumVals  int32
	IsFloat  []bool // per-Value register class
	Frame    []FrameSlot
	Line     int32
}

// NewValue allocates a fresh virtual register of the given class.
func (f *Func) NewValue(isFloat bool) Value {
	v := Value(f.NumVals)
	f.NumVals++
	f.IsFloat = append(f.IsFloat, isFloat)
	return v
}

// NewBlock appends an empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: int32(len(f.Blocks))}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Program is a whole compilation unit in IR form.
type Program struct {
	Name  string
	Funcs []*Func
	// FuncIndex maps names to Funcs indices (call targets use it).
	FuncIndex map[string]int32
	// GlobalAddrs and GlobalSyms mirror the data-segment layout
	// decided before lowering.
	GlobalNames []string
}

// String renders the function for debugging and golden tests.
func (f *Func) String() string {
	s := fmt.Sprintf("func %s (%d vals)\n", f.Name, f.NumVals)
	for _, b := range f.Blocks {
		s += fmt.Sprintf("b%d:\n", b.ID)
		for i := range b.Instrs {
			s += "  " + instrString(&b.Instrs[i]) + "\n"
		}
		s += "  " + instrString(&b.Term) + "\n"
	}
	return s
}

func instrString(i *Instr) string {
	switch i.Op {
	case OpConstI:
		return fmt.Sprintf("v%d = %d", i.Dst, i.Imm)
	case OpConstF:
		return fmt.Sprintf("v%d = %g", i.Dst, i.FImm)
	case OpMove:
		return fmt.Sprintf("v%d = v%d", i.Dst, i.A)
	case OpLoad:
		return fmt.Sprintf("v%d = load.%d [v%d+%d] %s", i.Dst, i.Width, i.A, i.Off, i.Region)
	case OpStore:
		return fmt.Sprintf("store.%d [v%d+%d] = v%d %s", i.Width, i.A, i.Off, i.B, i.Region)
	case OpFrameAddr:
		return fmt.Sprintf("v%d = frameaddr %d", i.Dst, i.Sym)
	case OpCall:
		return fmt.Sprintf("v%d = call f%d %v", i.Dst, i.Sym, i.Args)
	case OpCMov:
		return fmt.Sprintf("v%d = cmov v%d ? v%d", i.Dst, i.A, i.B)
	case OpPrint:
		return fmt.Sprintf("print v%d", i.A)
	case OpJump:
		return fmt.Sprintf("jump b%d", i.True)
	case OpBranch:
		return fmt.Sprintf("branch v%d ? b%d : b%d", i.A, i.True, i.False)
	case OpRet:
		if i.A == NoValue {
			return "ret"
		}
		return fmt.Sprintf("ret v%d", i.A)
	default:
		return fmt.Sprintf("v%d = %s v%d, v%d", i.Dst, i.Op, i.A, i.B)
	}
}

// Validate checks structural invariants of the function.
func (f *Func) Validate() error {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.IsTerm() {
				return fmt.Errorf("ir: %s b%d: terminator %s in body", f.Name, b.ID, in.Op)
			}
			if err := f.checkVals(in); err != nil {
				return fmt.Errorf("ir: %s b%d: %v", f.Name, b.ID, err)
			}
		}
		if !b.Term.IsTerm() {
			return fmt.Errorf("ir: %s b%d: missing terminator", f.Name, b.ID)
		}
		for _, s := range b.Succs() {
			if s < 0 || int(s) >= len(f.Blocks) {
				return fmt.Errorf("ir: %s b%d: bad successor b%d", f.Name, b.ID, s)
			}
		}
	}
	return nil
}

func (f *Func) checkVals(in *Instr) error {
	check := func(v Value) error {
		if v != NoValue && (v < 0 || int32(v) >= f.NumVals) {
			return fmt.Errorf("%s: value v%d out of range", in.Op, v)
		}
		return nil
	}
	var buf []Value
	for _, v := range in.Uses(buf) {
		if err := check(v); err != nil {
			return err
		}
	}
	return check(in.Dst)
}
