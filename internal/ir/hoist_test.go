package ir

import "testing"

// The Figure 5 scenario: a guarded store in the THEN block, loads in
// the join block. Hoisting the join's loads into the branch block is
// legal only if they cannot alias the store.
const triangleParamSrc = `
int kernel(int *mc, int *dpp, int k, int sc) {
	if (sc > mc[k]) mc[k] = sc;     /* store through param in THEN */
	int x = dpp[k];                 /* join-block load */
	return x * 2;
}
int main() { int a[8]; int b[8]; return kernel(a, b, 1, 5); }
`

const triangleGlobalSrc = `
int mc[8]; int dpp[8];
int kernel(int k, int sc) {
	if (sc > mc[k]) mc[k] = sc;
	int x = dpp[k];
	return x * 2;
}
int main() { return kernel(1, 5); }
`

// loadsInBlockWithBranch counts loads in blocks that end with a
// conditional branch (i.e., hoisted above the branch).
func loadsAboveBranch(f *Func) int {
	n := 0
	for _, b := range f.Blocks {
		if b.Term.Op != OpBranch {
			continue
		}
		for i := range b.Instrs {
			if b.Instrs[i].Op == OpLoad {
				n++
			}
		}
	}
	return n
}

func optimizeWith(t *testing.T, src, fn string, opts OptOptions) *Func {
	t.Helper()
	p := lowerSrc(t, src)
	f := findFunc(t, p, fn)
	Optimize(f, opts)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid after optimize: %v", err)
	}
	return f
}

func TestHoistBlockedByParamStore(t *testing.T) {
	// Conservative aliasing: dpp[k] may alias mc[k] (both pointer
	// params), so the load must NOT move above the branch. This is
	// the paper's compiler limitation.
	before := optimizeWith(t, triangleParamSrc, "kernel", OptOptions{})
	base := loadsAboveBranch(before)
	f := optimizeWith(t, triangleParamSrc, "kernel", O2())
	if got := loadsAboveBranch(f); got > base {
		t.Errorf("load hoisted across a may-alias param store (before=%d after=%d)\n%s",
			base, got, f)
	}
}

func TestHoistFiresForDistinctGlobals(t *testing.T) {
	// mc and dpp are distinct globals: the hoist is provably safe and
	// must fire (the paper's Figure 5(b)).
	noHoist := O2()
	noHoist.GlobalHoist = false
	base := loadsAboveBranch(optimizeWith(t, triangleGlobalSrc, "kernel", noHoist))
	f := optimizeWith(t, triangleGlobalSrc, "kernel", O2())
	if got := loadsAboveBranch(f); got <= base {
		t.Errorf("load not hoisted despite provable no-alias (base=%d got=%d)\n%s",
			base, got, f)
	}
}

func TestHoistFiresUnderRestrict(t *testing.T) {
	// With restrict-qualified parameters the paper's Itanium
	// observation applies: the compiler may hoist.
	opts := O2()
	opts.RestrictParams = true
	noHoist := O2()
	noHoist.GlobalHoist = false
	base := loadsAboveBranch(optimizeWith(t, triangleParamSrc, "kernel", noHoist))
	f := optimizeWith(t, triangleParamSrc, "kernel", opts)
	if got := loadsAboveBranch(f); got <= base {
		t.Errorf("restrict did not unblock the hoist (base=%d got=%d)\n%s", base, got, f)
	}
}

func TestNoAliasRestrictRules(t *testing.T) {
	p0 := Region{Kind: RegionParam, ID: 0}
	p1 := Region{Kind: RegionParam, ID: 1}
	g0 := Region{Kind: RegionGlobal, ID: 0}
	if noAliasR(p0, p1, false) {
		t.Error("params must alias without restrict")
	}
	if !noAliasR(p0, p1, true) {
		t.Error("distinct params must not alias under restrict")
	}
	if noAliasR(p0, p0, true) {
		t.Error("a param always aliases itself")
	}
	if !noAliasR(p0, g0, true) || !noAliasR(g0, p0, true) {
		t.Error("param vs global must not alias under restrict")
	}
}

func TestHoistPreservesSemanticsViaScheduleCheck(t *testing.T) {
	// Structural check: hoisting must not duplicate or drop
	// instructions.
	count := func(f *Func) int {
		n := 0
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
		return n
	}
	p := lowerSrc(t, triangleGlobalSrc)
	f := findFunc(t, p, "kernel")
	opts := OptOptions{GlobalHoist: true}
	before := count(f)
	moved := globalHoistLoads(f, false)
	if count(f) != before {
		t.Fatalf("hoist changed instruction count: %d -> %d", before, count(f))
	}
	if moved == 0 {
		t.Error("expected at least one hoisted instruction")
	}
	_ = opts
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHoistSkipsLoopHeads(t *testing.T) {
	// A join block that is also a loop head has more than two preds
	// (or a backedge); hoisting must not fire and must not corrupt
	// the CFG.
	src := `
int a[8];
int kernel(int n) {
	int s = 0; int i;
	for (i = 0; i < n; i++) {
		if (s > 10) s = 0;
		s += a[i & 7];
	}
	return s;
}
int main() { return kernel(20); }`
	f := optimizeWith(t, src, "kernel", O2())
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}
