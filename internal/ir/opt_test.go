package ir

import (
	"strings"
	"testing"

	"bioperfload/internal/minic"
)

// lowerSrc parses, checks, and lowers a source snippet with a trivial
// global layout.
func lowerSrc(t *testing.T, src string) *Program {
	t.Helper()
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := minic.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	layout := map[string]GlobalLayout{}
	addr := uint64(0x10000)
	for i, g := range f.Globals {
		size := uint64(g.Ty.Base.ElemSize())
		if g.Ty.IsArray {
			size = uint64(g.Ty.ArrayN) * uint64(g.Ty.Base.ElemSize())
		}
		layout[g.Name] = GlobalLayout{Addr: addr, Index: int32(i), Ty: g.Ty}
		addr += (size + 7) &^ 7
	}
	p, err := Lower(f, info, layout)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		if err := fn.Validate(); err != nil {
			t.Fatalf("%s: %v", fn.Name, err)
		}
	}
	return p
}

func findFunc(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func countOps(f *Func, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
		if b.Term.Op == op {
			n++
		}
	}
	return n
}

func TestNoAliasRules(t *testing.T) {
	g0 := Region{Kind: RegionGlobal, ID: 0}
	g1 := Region{Kind: RegionGlobal, ID: 1}
	s0 := Region{Kind: RegionStack, ID: 0}
	s1 := Region{Kind: RegionStack, ID: 1}
	p0 := Region{Kind: RegionParam, ID: 0}
	p1 := Region{Kind: RegionParam, ID: 1}
	u := Region{Kind: RegionUnknown}

	cases := []struct {
		a, b Region
		want bool
	}{
		{g0, g1, true},  // distinct globals never alias
		{g0, g0, false}, // same global
		{s0, s1, true},  // distinct stack slots
		{s0, s0, false}, // same slot
		{g0, s0, true},  // a global is never a stack slot
		{p0, p1, false}, // two pointer params may be the same object
		{p0, g0, false}, // a pointer param may point at any global
		{p0, s0, false}, // or at a caller's stack array
		{u, g0, false},
		{u, u, false},
	}
	for _, c := range cases {
		if got := NoAlias(c.a, c.b); got != c.want {
			t.Errorf("NoAlias(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := NoAlias(c.b, c.a); got != c.want {
			t.Errorf("NoAlias(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestIfConversionFiresOnRegisterOnlyThen(t *testing.T) {
	// The paper's transformed pattern: the guarded assignment targets
	// a scalar temporary, so it must become a CMOV and the branch
	// must disappear.
	p := lowerSrc(t, `
int kernel(int a, int b) {
	int t1 = a;
	int t2 = b;
	if (t2 > t1) t1 = t2;
	return t1;
}
int main() { return kernel(1, 2); }`)
	f := findFunc(t, p, "kernel")
	before := countOps(f, OpBranch)
	Optimize(f, O2())
	if countOps(f, OpCMov) == 0 {
		t.Errorf("no CMOV generated for register-only THEN clause\n%s", f)
	}
	if countOps(f, OpBranch) >= before {
		t.Errorf("branch count did not drop: before %d after %d", before, countOps(f, OpBranch))
	}
}

func TestIfConversionBlockedByStore(t *testing.T) {
	// The paper's original pattern: the THEN clause stores to memory
	// through a pointer parameter; if-conversion must NOT fire.
	p := lowerSrc(t, `
int kernel(int *mc, int k, int sc) {
	if (sc > mc[k]) mc[k] = sc;
	return mc[k];
}
int main() { int a[4]; return kernel(a, 0, 3); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	if countOps(f, OpCMov) != 0 {
		t.Errorf("CMOV generated for a THEN clause containing a store\n%s", f)
	}
	if countOps(f, OpBranch) == 0 {
		t.Errorf("the guarding branch disappeared\n%s", f)
	}
}

func TestIfConversionMultiInstrBody(t *testing.T) {
	p := lowerSrc(t, `
int kernel(int a, int b, int c) {
	int r = a;
	if (b > a) r = b + c;
	return r;
}
int main() { return kernel(1, 2, 3); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	if countOps(f, OpCMov) == 0 {
		t.Errorf("no CMOV for two-instruction pure body\n%s", f)
	}
}

func TestIfConversionRespectsSizeLimit(t *testing.T) {
	p := lowerSrc(t, `
int kernel(int a, int b) {
	int r = a;
	if (b > a) r = ((b + a) * 3 + (b - a) * 5) * ((a + 7) * (b + 9)) + b / (a + 1);
	return r;
}
int main() { return kernel(1, 2); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	// The body is far over MaxIfConvert (and contains a division,
	// which can trap), so the branch must survive.
	if countOps(f, OpBranch) == 0 {
		t.Errorf("oversized THEN clause was if-converted\n%s", f)
	}
}

func TestSchedulerHoistsLoadAboveProvablyDistinctStore(t *testing.T) {
	// Store to global array a, then load from global array b: the
	// scheduler may (and with load priority, will) hoist the load.
	p := lowerSrc(t, `
int a[16]; int b[16];
int kernel(int i, int v) {
	a[i] = v;
	int x = b[i];
	return x * 2 + 1;
}
int main() { return kernel(1, 2); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	// Find relative order of the store and the load in the entry
	// block after scheduling.
	blk := f.Blocks[0]
	storeIdx, loadIdx := -1, -1
	for i := range blk.Instrs {
		switch blk.Instrs[i].Op {
		case OpStore:
			storeIdx = i
		case OpLoad:
			loadIdx = i
		}
	}
	if storeIdx < 0 || loadIdx < 0 {
		t.Fatalf("missing memory ops\n%s", f)
	}
	if loadIdx > storeIdx {
		t.Errorf("load not hoisted above provably-independent store\n%s", f)
	}
}

func TestSchedulerBlocksLoadHoistAcrossParamStore(t *testing.T) {
	// The same code through pointer parameters: no disambiguation is
	// possible, so the load must stay after the store. This is the
	// paper's central compiler limitation.
	p := lowerSrc(t, `
int kernel(int *a, int *b, int i, int v) {
	a[i] = v;
	int x = b[i];
	return x * 2 + 1;
}
int main() { int q[4]; return kernel(q, q, 0, 1); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	blk := f.Blocks[0]
	storeIdx, loadIdx := -1, -1
	for i := range blk.Instrs {
		switch blk.Instrs[i].Op {
		case OpStore:
			storeIdx = i
		case OpLoad:
			loadIdx = i
		}
	}
	if storeIdx < 0 || loadIdx < 0 {
		t.Fatalf("missing memory ops\n%s", f)
	}
	if loadIdx < storeIdx {
		t.Errorf("load hoisted across a may-alias store through pointer params\n%s", f)
	}
}

func TestSchedulerAllowsSameBaseDisjointOffsets(t *testing.T) {
	// p[0] and p[1] through the same pointer cannot overlap: the
	// constant-offset disambiguation applies even to params.
	p := lowerSrc(t, `
int kernel(int *p, int v) {
	p[0] = v;
	int x = p[1];
	return x + 1;
}
int main() { int q[4]; return kernel(q, 3); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	blk := f.Blocks[0]
	storeIdx, loadIdx := -1, -1
	for i := range blk.Instrs {
		switch blk.Instrs[i].Op {
		case OpStore:
			storeIdx = i
		case OpLoad:
			loadIdx = i
		}
	}
	if loadIdx > storeIdx {
		t.Errorf("disjoint-offset load not hoisted\n%s", f)
	}
}

func TestConstantFolding(t *testing.T) {
	p := lowerSrc(t, `
int main() {
	int x = 3 * 4 + 5;
	int y = x + 0;
	int z = y * 1;
	return z;
}`)
	f := findFunc(t, p, "main")
	Optimize(f, O2())
	// After folding + copy prop + DCE, main should have no Add/Mul.
	if n := countOps(f, OpMul); n != 0 {
		t.Errorf("%d multiplies survived folding\n%s", n, f)
	}
	adds := countOps(f, OpAdd)
	if adds > 0 {
		t.Errorf("%d adds survived folding\n%s", adds, f)
	}
}

func TestCSEEliminatesRepeatedLoads(t *testing.T) {
	p := lowerSrc(t, `
int a[8];
int kernel(int k) {
	return a[k] + a[k] + a[k];
}
int main() { return kernel(2); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	if n := countOps(f, OpLoad); n != 1 {
		t.Errorf("want 1 load after CSE, got %d\n%s", n, f)
	}
}

func TestCSEKilledByInterveningStore(t *testing.T) {
	p := lowerSrc(t, `
int a[8];
int kernel(int *p, int k) {
	int x = a[k];
	p[k] = 7;      /* may alias a */
	int y = a[k];
	return x + y;
}
int main() { int q[8]; return kernel(q, 1); }`)
	f := findFunc(t, p, "kernel")
	Optimize(f, O2())
	if n := countOps(f, OpLoad); n < 2 {
		t.Errorf("redundant-load elimination crossed a may-alias store (loads=%d)\n%s", n, f)
	}
}

func TestDCERemovesUnusedChain(t *testing.T) {
	p := lowerSrc(t, `
int main() {
	int a = 5;
	int b = a * 7;
	int c = b + a;
	print(a);
	return 0;
}`)
	f := findFunc(t, p, "main")
	Optimize(f, O2())
	if countOps(f, OpMul) != 0 {
		t.Errorf("dead multiply survived\n%s", f)
	}
}

func TestDCEKeepsStoresAndCalls(t *testing.T) {
	p := lowerSrc(t, `
int g[4];
int counter = 0;
int bump() { counter += 1; return counter; }
int main() {
	int dead = bump();  /* result unused, call must stay */
	g[0] = 9;           /* store must stay */
	return counter;
}`)
	f := findFunc(t, p, "main")
	Optimize(f, O2())
	if countOps(f, OpCall) != 1 {
		t.Errorf("call removed by DCE\n%s", f)
	}
	if countOps(f, OpStore) == 0 {
		t.Errorf("store removed by DCE\n%s", f)
	}
}

func TestSchedulerPreservesStoreOrder(t *testing.T) {
	// Two stores to the same array must not swap.
	p := lowerSrc(t, `
int a[8];
int main() {
	a[0] = 1;
	a[0] = 2;
	return a[0];
}`)
	f := findFunc(t, p, "main")
	Optimize(f, O2())
	blk := f.Blocks[0]
	var stores []int64
	for i := range blk.Instrs {
		if blk.Instrs[i].Op == OpStore {
			stores = append(stores, blk.Instrs[i].Off)
		}
	}
	// Both stores hit offset 0; order is only observable through
	// the B operand, so just check both survived in order (WAW).
	if len(stores) != 2 {
		t.Fatalf("stores = %v\n%s", stores, f)
	}
}

func TestOptimizePreservesValidity(t *testing.T) {
	srcs := []string{
		`int main() { int i; int s = 0; for (i = 0; i < 10; i++) s += i; return s; }`,
		`int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); } int main() { return f(10); }`,
		`double d[4]; int main() { d[0] = 1.5; d[1] = d[0] * 2.0; print(d[1]); return 0; }`,
		`int a[4]; int main() { int i = 0; while (i < 4) { a[i] = i > 2 ? i : -i; i++; } return a[3]; }`,
	}
	for _, src := range srcs {
		p := lowerSrc(t, src)
		for _, f := range p.Funcs {
			Optimize(f, O2())
			if err := f.Validate(); err != nil {
				t.Errorf("optimize broke validity: %v\n%s", err, f)
			}
		}
	}
}

func TestInstrStringAndOpString(t *testing.T) {
	if OpLoad.String() != "load" || OpCMov.String() != "cmov" {
		t.Error("op names wrong")
	}
	if Op(200).String() == "" {
		t.Error("unknown op should still render")
	}
	p := lowerSrc(t, `int a[2]; int main() { a[0] = 1; print(a[0]); return 0; }`)
	s := findFunc(t, p, "main").String()
	for _, want := range []string{"func main", "store", "load", "print", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
