package ir

import "bioperfload/internal/minic"

// lowerExpr lowers an expression and returns the value holding the
// result together with its register class.
func (l *lowerer) lowerExpr(e minic.Expr) (Value, bool) {
	switch ex := e.(type) {
	case *minic.IntLit:
		return l.constI(ex.Val, ex.Line), false
	case *minic.FloatLit:
		return l.constF(ex.Val, ex.Line), true
	case *minic.VarRef:
		return l.lowerVarRead(ex)
	case *minic.Index:
		return l.lowerIndexRead(ex)
	case *minic.Unary:
		return l.lowerUnary(ex)
	case *minic.Cast:
		v, isF := l.lowerExpr(ex.X)
		want := ex.To == minic.TypeDouble
		return l.convert(v, isF, want, ex.Line), want
	case *minic.Binary:
		return l.lowerBinary(ex)
	case *minic.Logical:
		return l.lowerLogical(ex)
	case *minic.Cond:
		return l.lowerTernary(ex)
	case *minic.Assign2:
		return l.lowerAssign(ex)
	case *minic.IncDec:
		return l.lowerIncDec(ex)
	case *minic.Call:
		return l.lowerCall(ex)
	}
	l.bug(lineOf(e), "unknown expression %T", e)
	return NoValue, false
}

func (l *lowerer) lowerVarRead(ex *minic.VarRef) (Value, bool) {
	sym := l.info.Refs[ex]
	if sym == nil {
		l.bug(ex.Line, "unresolved variable %s", ex.Name)
	}
	if sym.Ty.IsMemory() {
		// Array used as a value: its base address (for call args).
		t := l.arrayBase(sym, ex.Line)
		return t.base, false
	}
	if sym.Kind == minic.SymGlobal {
		// Scalar globals live in memory.
		g := l.globals[sym.Name]
		base := l.constI(int64(g.Addr), ex.Line)
		isF := sym.Ty.Base == minic.TypeDouble
		dst := l.fn.NewValue(isF)
		l.emit(Instr{
			Op: OpLoad, Dst: dst, A: base, B: NoValue,
			Width: uint8(sym.Ty.Base.ElemSize()), FloatMem: isF,
			Region: Region{Kind: RegionGlobal, ID: g.Index}, Line: ex.Line,
		})
		return dst, isF
	}
	v := l.symValue(sym, ex.Line)
	return v, l.fn.IsFloat[v]
}

// addrOf computes the address value and constant offset for arr[idx].
func (l *lowerer) addrOf(ex *minic.Index) (base Value, off int64, t memTarget) {
	sym := l.info.Refs[ex.Arr]
	if sym == nil {
		l.bug(ex.Line, "unresolved array %s", ex.Arr.Name)
	}
	t = l.arrayBase(sym, ex.Line)
	elem := int64(t.elem.ElemSize())
	if lit, ok := ex.Idx.(*minic.IntLit); ok {
		return t.base, lit.Val * elem, t
	}
	idx, isF := l.lowerExpr(ex.Idx)
	idx = l.convert(idx, isF, false, ex.Line)
	var addr Value
	if elem == 8 {
		// One scaled-index add, as Alpha's s8addq.
		addr = l.op2(OpS8Add, idx, t.base, false, ex.Line)
	} else {
		addr = l.op2(OpAdd, t.base, idx, false, ex.Line)
	}
	return addr, 0, t
}

func (l *lowerer) lowerIndexRead(ex *minic.Index) (Value, bool) {
	addr, off, t := l.addrOf(ex)
	isF := t.elem == minic.TypeDouble
	dst := l.fn.NewValue(isF)
	l.emit(Instr{
		Op: OpLoad, Dst: dst, A: addr, B: NoValue, Off: off,
		Width: uint8(t.elem.ElemSize()), FloatMem: isF,
		Region: t.region, Line: ex.Line,
	})
	return dst, isF
}

func (l *lowerer) lowerUnary(ex *minic.Unary) (Value, bool) {
	v, isF := l.lowerExpr(ex.X)
	switch ex.Op {
	case minic.Minus:
		if isF {
			return l.op2(OpFNeg, v, NoValue, true, ex.Line), true
		}
		zero := l.constI(0, ex.Line)
		return l.op2(OpSub, zero, v, false, ex.Line), false
	case minic.Not:
		if isF {
			z := l.constF(0, ex.Line)
			return l.op2(OpFCmpEQ, v, z, false, ex.Line), false
		}
		zero := l.constI(0, ex.Line)
		return l.op2(OpCmpEQ, v, zero, false, ex.Line), false
	case minic.Tilde:
		m1 := l.constI(-1, ex.Line)
		return l.op2(OpXor, v, m1, false, ex.Line), false
	}
	l.bug(ex.Line, "unknown unary %s", ex.Op)
	return NoValue, false
}

var intBinOps = map[minic.Kind]Op{
	minic.Plus: OpAdd, minic.Minus: OpSub, minic.Star: OpMul,
	minic.Slash: OpDiv, minic.Percent: OpRem,
	minic.And: OpAnd, minic.Or: OpOr, minic.Xor: OpXor,
	minic.Shl: OpShl, minic.Shr: OpShr,
	minic.EqEq: OpCmpEQ, minic.NotEq: OpCmpNE,
	minic.Lt: OpCmpLT, minic.Le: OpCmpLE,
	minic.Gt: OpCmpGT, minic.Ge: OpCmpGE,
}

var floatBinOps = map[minic.Kind]Op{
	minic.Plus: OpFAdd, minic.Minus: OpFSub, minic.Star: OpFMul,
	minic.Slash: OpFDiv,
	minic.EqEq:  OpFCmpEQ, minic.NotEq: OpFCmpNE,
	minic.Lt: OpFCmpLT, minic.Le: OpFCmpLE,
	minic.Gt: OpFCmpGT, minic.Ge: OpFCmpGE,
}

func isCmpKind(k minic.Kind) bool {
	switch k {
	case minic.EqEq, minic.NotEq, minic.Lt, minic.Le, minic.Gt, minic.Ge:
		return true
	}
	return false
}

func (l *lowerer) lowerBinary(ex *minic.Binary) (Value, bool) {
	x, xf := l.lowerExpr(ex.X)
	y, yf := l.lowerExpr(ex.Y)
	useFloat := xf || yf
	if useFloat {
		x = l.convert(x, xf, true, ex.Line)
		y = l.convert(y, yf, true, ex.Line)
		op, ok := floatBinOps[ex.Op]
		if !ok {
			l.bug(ex.Line, "float operands for %s", ex.Op)
		}
		if isCmpKind(ex.Op) {
			return l.op2(op, x, y, false, ex.Line), false
		}
		return l.op2(op, x, y, true, ex.Line), true
	}
	op := intBinOps[ex.Op]
	return l.op2(op, x, y, false, ex.Line), false
}

func (l *lowerer) lowerLogical(ex *minic.Logical) (Value, bool) {
	res := l.fn.NewValue(false)
	rhsB := l.fn.NewBlock()
	shortB := l.fn.NewBlock()
	joinB := l.fn.NewBlock()

	cond := l.lowerCond(ex.X)
	if ex.Op == minic.AndAnd {
		// x true -> evaluate y; x false -> result 0.
		l.setTerm(Instr{Op: OpBranch, Dst: NoValue, A: cond, B: NoValue,
			True: rhsB.ID, False: shortB.ID, Line: ex.Line})
	} else {
		// x true -> result 1; x false -> evaluate y.
		l.setTerm(Instr{Op: OpBranch, Dst: NoValue, A: cond, B: NoValue,
			True: shortB.ID, False: rhsB.ID, Line: ex.Line})
	}

	l.cur = shortB
	var shortVal int64
	if ex.Op == minic.OrOr {
		shortVal = 1
	}
	sv := l.constI(shortVal, ex.Line)
	l.move(res, sv, ex.Line)
	l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: joinB.ID, Line: ex.Line})

	l.cur = rhsB
	y := l.lowerCond(ex.Y)
	zero := l.constI(0, ex.Line)
	norm := l.op2(OpCmpNE, y, zero, false, ex.Line)
	l.move(res, norm, ex.Line)
	l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: joinB.ID, Line: ex.Line})

	l.cur = joinB
	return res, false
}

func (l *lowerer) lowerTernary(ex *minic.Cond) (Value, bool) {
	tyA := l.info.Types[ex.A]
	tyB := l.info.Types[ex.B]
	isF := tyA.Base == minic.TypeDouble || tyB.Base == minic.TypeDouble
	res := l.fn.NewValue(isF)

	cond := l.lowerCond(ex.C)
	thenB := l.fn.NewBlock()
	elseB := l.fn.NewBlock()
	joinB := l.fn.NewBlock()
	l.setTerm(Instr{Op: OpBranch, Dst: NoValue, A: cond, B: NoValue,
		True: thenB.ID, False: elseB.ID, Line: ex.Line})

	l.cur = thenB
	av, af := l.lowerExpr(ex.A)
	av = l.convert(av, af, isF, ex.Line)
	l.move(res, av, ex.Line)
	l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: joinB.ID, Line: ex.Line})

	l.cur = elseB
	bv, bf := l.lowerExpr(ex.B)
	bv = l.convert(bv, bf, isF, ex.Line)
	l.move(res, bv, ex.Line)
	l.setTerm(Instr{Op: OpJump, Dst: NoValue, A: NoValue, B: NoValue, True: joinB.ID, Line: ex.Line})

	l.cur = joinB
	return res, isF
}

// binOpFor maps a compound-assignment operator to its binary kind.
func binOpFor(k minic.Kind) minic.Kind {
	switch k {
	case minic.PlusEq:
		return minic.Plus
	case minic.MinusEq:
		return minic.Minus
	case minic.StarEq:
		return minic.Star
	case minic.SlashEq:
		return minic.Slash
	case minic.PercentEq:
		return minic.Percent
	}
	return k
}

func (l *lowerer) lowerAssign(ex *minic.Assign2) (Value, bool) {
	switch lhs := ex.Lhs.(type) {
	case *minic.VarRef:
		sym := l.info.Refs[lhs]
		if sym == nil {
			l.bug(ex.Line, "unresolved variable %s", lhs.Name)
		}
		lhsFloat := sym.Ty.Base == minic.TypeDouble
		if sym.Kind == minic.SymGlobal {
			return l.lowerGlobalScalarAssign(ex, sym, lhsFloat)
		}
		dst := l.symValue(sym, ex.Line)
		var rv Value
		if ex.Op == minic.Assign {
			v, isF := l.lowerExpr(ex.Rhs)
			rv = l.convert(v, isF, lhsFloat, ex.Line)
		} else {
			cur := dst
			v, isF := l.lowerExpr(ex.Rhs)
			rv = l.applyCompound(ex.Op, cur, lhsFloat, v, isF, ex.Line)
		}
		l.move(dst, rv, ex.Line)
		return dst, lhsFloat

	case *minic.Index:
		addr, off, t := l.addrOf(lhs)
		isF := t.elem == minic.TypeDouble
		var rv Value
		if ex.Op == minic.Assign {
			v, vf := l.lowerExpr(ex.Rhs)
			rv = l.convert(v, vf, isF, ex.Line)
		} else {
			cur := l.fn.NewValue(isF)
			l.emit(Instr{Op: OpLoad, Dst: cur, A: addr, B: NoValue, Off: off,
				Width: uint8(t.elem.ElemSize()), FloatMem: isF,
				Region: t.region, Line: ex.Line})
			v, vf := l.lowerExpr(ex.Rhs)
			rv = l.applyCompound(ex.Op, cur, isF, v, vf, ex.Line)
		}
		l.emit(Instr{Op: OpStore, Dst: NoValue, A: addr, B: rv, Off: off,
			Width: uint8(t.elem.ElemSize()), FloatMem: isF,
			Region: t.region, Line: ex.Line})
		return rv, isF
	}
	l.bug(ex.Line, "bad assignment target %T", ex.Lhs)
	return NoValue, false
}

func (l *lowerer) lowerGlobalScalarAssign(ex *minic.Assign2, sym *minic.Sym, isF bool) (Value, bool) {
	g := l.globals[sym.Name]
	base := l.constI(int64(g.Addr), ex.Line)
	region := Region{Kind: RegionGlobal, ID: g.Index}
	width := uint8(sym.Ty.Base.ElemSize())
	var rv Value
	if ex.Op == minic.Assign {
		v, vf := l.lowerExpr(ex.Rhs)
		rv = l.convert(v, vf, isF, ex.Line)
	} else {
		cur := l.fn.NewValue(isF)
		l.emit(Instr{Op: OpLoad, Dst: cur, A: base, B: NoValue,
			Width: width, FloatMem: isF, Region: region, Line: ex.Line})
		v, vf := l.lowerExpr(ex.Rhs)
		rv = l.applyCompound(ex.Op, cur, isF, v, vf, ex.Line)
	}
	l.emit(Instr{Op: OpStore, Dst: NoValue, A: base, B: rv,
		Width: width, FloatMem: isF, Region: region, Line: ex.Line})
	return rv, isF
}

// applyCompound computes cur op rhs with conversions, returning a
// value of the lhs class.
func (l *lowerer) applyCompound(op minic.Kind, cur Value, curF bool, rhs Value, rhsF bool, line int32) Value {
	bk := binOpFor(op)
	if curF || rhsF {
		a := l.convert(cur, curF, true, line)
		b := l.convert(rhs, rhsF, true, line)
		res := l.op2(floatBinOps[bk], a, b, true, line)
		return l.convert(res, true, curF, line)
	}
	return l.op2(intBinOps[bk], cur, rhs, false, line)
}

func (l *lowerer) lowerIncDec(ex *minic.IncDec) (Value, bool) {
	one := func() Value { return l.constI(1, ex.Line) }
	opk := minic.Plus
	if ex.Op == minic.Dec {
		opk = minic.Minus
	}
	switch lhs := ex.X.(type) {
	case *minic.VarRef:
		sym := l.info.Refs[lhs]
		if sym == nil {
			l.bug(ex.Line, "unresolved variable %s", lhs.Name)
		}
		if sym.Kind == minic.SymGlobal {
			g := l.globals[sym.Name]
			base := l.constI(int64(g.Addr), ex.Line)
			region := Region{Kind: RegionGlobal, ID: g.Index}
			old := l.fn.NewValue(false)
			l.emit(Instr{Op: OpLoad, Dst: old, A: base, B: NoValue,
				Width: uint8(sym.Ty.Base.ElemSize()), Region: region, Line: ex.Line})
			nv := l.op2(intBinOps[opk], old, one(), false, ex.Line)
			l.emit(Instr{Op: OpStore, Dst: NoValue, A: base, B: nv,
				Width: uint8(sym.Ty.Base.ElemSize()), Region: region, Line: ex.Line})
			if ex.Postfix {
				return old, false
			}
			return nv, false
		}
		dst := l.symValue(sym, ex.Line)
		if ex.Postfix {
			old := l.fn.NewValue(false)
			l.move(old, dst, ex.Line)
			nv := l.op2(intBinOps[opk], dst, one(), false, ex.Line)
			l.move(dst, nv, ex.Line)
			return old, false
		}
		nv := l.op2(intBinOps[opk], dst, one(), false, ex.Line)
		l.move(dst, nv, ex.Line)
		return dst, false

	case *minic.Index:
		addr, off, t := l.addrOf(lhs)
		old := l.fn.NewValue(false)
		l.emit(Instr{Op: OpLoad, Dst: old, A: addr, B: NoValue, Off: off,
			Width: uint8(t.elem.ElemSize()), Region: t.region, Line: ex.Line})
		nv := l.op2(intBinOps[opk], old, one(), false, ex.Line)
		l.emit(Instr{Op: OpStore, Dst: NoValue, A: addr, B: nv, Off: off,
			Width: uint8(t.elem.ElemSize()), Region: t.region, Line: ex.Line})
		if ex.Postfix {
			return old, false
		}
		return nv, false
	}
	l.bug(ex.Line, "bad ++/-- target %T", ex.X)
	return NoValue, false
}

func (l *lowerer) lowerCall(ex *minic.Call) (Value, bool) {
	if ex.Name == "print" {
		v, _ := l.lowerExpr(ex.Args[0])
		l.emit(Instr{Op: OpPrint, Dst: NoValue, A: v, B: NoValue, Line: ex.Line})
		return NoValue, false
	}
	sig := l.info.Calls[ex]
	if sig == nil {
		l.bug(ex.Line, "unresolved call %s", ex.Name)
	}
	args := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		v, isF := l.lowerExpr(a)
		if i < len(sig.Params) && !sig.Params[i].Ty.IsPtr {
			v = l.convert(v, isF, sig.Params[i].Ty.Base == minic.TypeDouble, ex.Line)
		}
		args[i] = v
	}
	idx := l.prog.FuncIndex[ex.Name]
	var dst Value = NoValue
	isF := sig.Ret == minic.TypeDouble
	if sig.Ret != minic.TypeVoid {
		dst = l.fn.NewValue(isF)
	}
	l.emit(Instr{Op: OpCall, Dst: dst, A: NoValue, B: NoValue, Sym: idx, Args: args, Line: ex.Line})
	return dst, isF
}
