package ir

// Global load hoisting — the transformation the paper's Figure 5
// describes and most compilers cannot apply. In a triangle
//
//	B:  ...; branch c ? T : J
//	T:  ... store ...; jump J
//	J:  loads; ...
//
// block B dominates J and every path from B reaches J, so the leading
// loads of J may be hoisted into B (executing them a branch earlier
// and hiding their latency behind the branch resolution) — *provided*
// they can be disambiguated against the stores in T. With the default
// conservative analysis a store through a pointer parameter blocks
// every hoist, exactly as the paper observes of production compilers
// (Section 2.2.2); with RestrictParams (the C99 `restrict` experiment
// from the paper's Itanium discussion) pointer parameters are assumed
// pairwise non-overlapping and the hoist goes through.

// maxHoistPerBlock bounds code motion per join block.
const maxHoistPerBlock = 8

// noAliasR is NoAlias extended with the restrict-parameter assumption.
func noAliasR(a, b Region, restrict bool) bool {
	if NoAlias(a, b) {
		return true
	}
	if !restrict {
		return false
	}
	// Under restrict, distinct pointer parameters never overlap, and
	// a pointer parameter never overlaps a named object.
	switch {
	case a.Kind == RegionParam && b.Kind == RegionParam:
		return a.ID != b.ID
	case a.Kind == RegionParam && (b.Kind == RegionGlobal || b.Kind == RegionStack):
		return true
	case b.Kind == RegionParam && (a.Kind == RegionGlobal || a.Kind == RegionStack):
		return true
	}
	return false
}

// mayAliasInstrR mirrors mayAliasInstr under the restrict option.
func mayAliasInstrR(a, b *Instr, restrict bool) bool {
	if noAliasR(a.Region, b.Region, restrict) {
		return false
	}
	if a.A == b.A && a.A != NoValue {
		aw, bw := int64(a.Width), int64(b.Width)
		if a.Off+aw <= b.Off || b.Off+bw <= a.Off {
			return false
		}
	}
	return true
}

// globalHoistLoads applies triangle load hoisting across the whole
// function, returning how many instructions moved.
func globalHoistLoads(f *Func, restrict bool) int {
	preds := make(map[int32][]int32)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	moved := 0
	for _, b := range f.Blocks {
		if b.Term.Op != OpBranch {
			continue
		}
		t := f.Blocks[b.Term.True]
		j := f.Blocks[b.Term.False]
		// Then-only triangle: B -> {T, J}, T -> J, J has exactly the
		// preds {B, T}.
		if t.ID == j.ID || t.Term.Op != OpJump || t.Term.True != j.ID {
			continue
		}
		if len(preds[t.ID]) != 1 {
			continue
		}
		pj := preds[j.ID]
		if len(pj) != 2 || !containsBoth(pj, b.ID, t.ID) {
			continue
		}

		// Values defined or used in T: hoisted instructions must not
		// interact with them.
		tDefs := make(map[Value]bool)
		tUses := make(map[Value]bool)
		var buf []Value
		scan := func(in *Instr) {
			buf = buf[:0]
			for _, v := range in.Uses(buf) {
				tUses[v] = true
			}
			if in.Dst != NoValue {
				tDefs[in.Dst] = true
			}
		}
		for i := range t.Instrs {
			scan(&t.Instrs[i])
		}
		scan(&t.Term)
		var tStores []*Instr
		for i := range t.Instrs {
			if t.Instrs[i].Op == OpStore {
				tStores = append(tStores, &t.Instrs[i])
			}
		}

		cond := b.Term.A
		n := 0
		for n < len(j.Instrs) && n < maxHoistPerBlock {
			in := &j.Instrs[n]
			ok := (in.IsPure() || in.Op == OpLoad) && in.Dst != NoValue
			if ok && in.Op == OpCMov {
				ok = false // reads its own dst; not worth the analysis
			}
			if ok {
				buf = buf[:0]
				for _, v := range in.Uses(buf) {
					if tDefs[v] {
						ok = false
					}
				}
			}
			if ok && (tDefs[in.Dst] || tUses[in.Dst] || in.Dst == cond) {
				ok = false
			}
			if ok && in.Op == OpLoad {
				for _, st := range tStores {
					if mayAliasInstrR(st, in, restrict) {
						ok = false
						break
					}
				}
			}
			if !ok {
				break
			}
			n++
		}
		if n == 0 {
			continue
		}
		b.Instrs = append(b.Instrs, j.Instrs[:n]...)
		j.Instrs = append(j.Instrs[:0], j.Instrs[n:]...)
		moved += n
	}
	return moved
}

func containsBoth(xs []int32, a, b int32) bool {
	return (xs[0] == a && xs[1] == b) || (xs[0] == b && xs[1] == a)
}
