package ir

// Bitset is a dense bitset over Value ids, shared by the liveness
// analysis here and the register allocator in codegen.
type Bitset []uint64

// NewBitset returns an empty set sized for n values.
func NewBitset(n int32) Bitset { return make(Bitset, (n+63)/64) }

// Has reports membership.
func (s Bitset) Has(v Value) bool { return s[v>>6]&(1<<(uint(v)&63)) != 0 }

// Add inserts v, reporting whether it was absent.
func (s Bitset) Add(v Value) bool {
	w := &s[v>>6]
	m := uint64(1) << (uint(v) & 63)
	if *w&m != 0 {
		return false
	}
	*w |= m
	return true
}

// Del removes v.
func (s Bitset) Del(v Value) { s[v>>6] &^= 1 << (uint(v) & 63) }

// OrInto unions o into s, reporting change.
func (s Bitset) OrInto(o Bitset) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s Bitset) Clone() Bitset {
	c := make(Bitset, len(s))
	copy(c, s)
	return c
}

// Liveness computes per-block live-in/live-out sets with the standard
// backward iterative dataflow. CMov destinations count as uses (the
// old value flows through).
func Liveness(f *Func) (liveIn, liveOut []Bitset) {
	n := f.NumVals
	nb := len(f.Blocks)
	liveIn = make([]Bitset, nb)
	liveOut = make([]Bitset, nb)
	use := make([]Bitset, nb)
	def := make([]Bitset, nb)
	var buf []Value
	for i, b := range f.Blocks {
		liveIn[i] = NewBitset(n)
		liveOut[i] = NewBitset(n)
		use[i] = NewBitset(n)
		def[i] = NewBitset(n)
		scan := func(in *Instr) {
			buf = buf[:0]
			for _, v := range in.Uses(buf) {
				if !def[i].Has(v) {
					use[i].Add(v)
				}
			}
			if in.Dst != NoValue {
				def[i].Add(in.Dst)
			}
		}
		for j := range b.Instrs {
			scan(&b.Instrs[j])
		}
		scan(&b.Term)
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs() {
				if liveOut[i].OrInto(liveIn[s]) {
					changed = true
				}
			}
			tmp := liveOut[i].Clone()
			for w := range tmp {
				tmp[w] = use[i][w] | (tmp[w] &^ def[i][w])
			}
			for w := range tmp {
				if tmp[w] != liveIn[i][w] {
					liveIn[i][w] = tmp[w]
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}

// deadDefElim removes pure instructions whose destination is not live
// immediately after them (e.g. the zero-initialization of a local
// that is always reassigned before use). It iterates until stable.
func deadDefElim(f *Func) {
	for {
		_, liveOut := Liveness(f)
		removed := false
		var buf []Value
		for bi, b := range f.Blocks {
			live := liveOut[bi].Clone()
			// Walk backward, removing dead pure defs.
			kept := make([]bool, len(b.Instrs))
			touch := func(in *Instr) {
				if in.Dst != NoValue {
					live.Del(in.Dst)
				}
				buf = buf[:0]
				for _, v := range in.Uses(buf) {
					live.Add(v)
				}
			}
			touch(&b.Term)
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				if in.Dst != NoValue && !in.HasSideEffects() && !live.Has(in.Dst) {
					kept[i] = false
					removed = true
					continue
				}
				kept[i] = true
				touch(in)
			}
			out := b.Instrs[:0]
			for i := range b.Instrs {
				if kept[i] {
					out = append(out, b.Instrs[i])
				}
			}
			b.Instrs = out
		}
		if !removed {
			return
		}
	}
}
