package runner

import (
	"context"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/simpoint"
)

// testSimPoint shrinks the intervals so test-size runs (~100k-400k
// instructions) span enough of them to cluster.
var testSimPoint = simpoint.Config{IntervalSize: 16384, WarmupEvents: 4096}

func render(p *Profile, sz bio.Size) string {
	return loadchar.RenderProfile(p.Name, sz.String(), p.Analysis, 10)
}

// TestSampledWithinTolerance: the sampled profile approximates the
// exact one. At test size the phases are short and irregular — much
// harsher than the classB/classC regime the tolerances are tuned for —
// so this only asserts the headline metrics land within a loose bound,
// plus the exact-by-construction invariants.
func TestSampledWithinTolerance(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"hmmsearch", "predator"} {
		t.Run(name, func(t *testing.T) {
			p, err := bio.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSession(2)
			s.SetSimPoint(testSimPoint)
			exact, err := s.Characterize(ctx, p, bio.SizeTest)
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := s.CharacterizeAccuracy(ctx, p, bio.SizeTest, AccuracySampled)
			if err != nil {
				t.Fatal(err)
			}
			if sampled.Instructions != exact.Instructions {
				t.Errorf("sampled Instructions %d != exact %d", sampled.Instructions, exact.Instructions)
			}
			if sampled.Source != "sampled" {
				t.Errorf("Source = %q, want sampled", sampled.Source)
			}
			diffs, max := simpoint.ProfileError(exact.Analysis, sampled.Analysis)
			if max > 15 {
				t.Errorf("sampled error %.2f pp exceeds the loose test-size bound: %v", max, diffs)
			}
			if st := s.Stats(); st.SampledChars != 1 || st.SampledDegrades != 0 {
				t.Errorf("stats %+v", st)
			}
		})
	}
}

// TestSampledDegradesToExact: a trace spanning fewer than MinIntervals
// intervals degrades — the served profile must be byte-identical to
// the exact one, and the degrade must be counted.
func TestSampledDegradesToExact(t *testing.T) {
	ctx := context.Background()
	p, err := bio.ByName("predator")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(1)
	// Default 256Ki-event intervals: the ~109k-event test run yields one.
	sampled, err := s.CharacterizeAccuracy(ctx, p, bio.SizeTest, AccuracySampled)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(sampled, bio.SizeTest), render(exact, bio.SizeTest); got != want {
		t.Errorf("degraded profile differs from exact:\n--- degraded ---\n%s\n--- exact ---\n%s", got, want)
	}
	if st := s.Stats(); st.SampledDegrades != 1 || st.SampledChars != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestSampledSingleBlockDegrades: a program whose whole body is one
// basic block cannot be phase-analyzed; the guard must degrade before
// collection, not panic.
func TestSampledSingleBlockDegrades(t *testing.T) {
	// No BioPerf kernel is single-block, so exercise the guard directly
	// through the plan API with a single-block synthetic: covered in
	// internal/simpoint. Here, assert the small-trace guard chain ends
	// in a working exact profile for every program.
	ctx := context.Background()
	for _, p := range bio.All() {
		s := NewSession(1)
		s.SetSimPoint(simpoint.Config{IntervalSize: 1 << 30}) // force degrade
		prof, err := s.CharacterizeAccuracy(ctx, p, bio.SizeTest, AccuracySampled)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if prof.Analysis == nil || prof.Instructions == 0 {
			t.Fatalf("%s: degraded profile is empty", p.Name)
		}
	}
}

// TestSampledStoreRoundTrip: a second session over the same store
// serves the sampled profile from its snapshot (no simulation), and
// the sampled artifact never shadows the exact one.
func TestSampledStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}

	st1 := openStore(t, dir)
	s1 := NewSessionWithStore(2, st1)
	s1.SetSimPoint(testSimPoint)
	sampled1, err := s1.CharacterizeAccuracy(ctx, p, bio.SizeTest, AccuracySampled)
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Runs != 1 || st.SampledChars != 1 {
		t.Fatalf("cold sampled stats %+v", st)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := NewSessionWithStore(2, st2)
	s2.SetSimPoint(testSimPoint)
	sampled2, err := s2.CharacterizeAccuracy(ctx, p, bio.SizeTest, AccuracySampled)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Runs != 0 || st.SampledHits != 1 || st.SampledChars != 0 {
		t.Fatalf("warm sampled stats %+v", st)
	}
	if got, want := render(sampled2, bio.SizeTest), render(sampled1, bio.SizeTest); got != want {
		t.Errorf("persisted sampled profile differs from fresh one")
	}
	// A different sampling config must miss the snapshot (its key
	// carries the config fingerprint) rather than serve a stale plan.
	s3 := NewSessionWithStore(2, st2)
	s3.SetSimPoint(simpoint.Config{IntervalSize: 8192, WarmupEvents: 4096})
	if _, err := s3.CharacterizeAccuracy(ctx, p, bio.SizeTest, AccuracySampled); err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.SampledHits != 0 || st.SampledChars != 1 {
		t.Fatalf("config-miss stats %+v", st)
	}
	// Exact requests must not see any sampled artifact: the exact
	// profile was never computed, so the store serves it by replaying
	// the recorded trace, not from a snapshot.
	exact, err := s2.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Source != "replay" {
		t.Errorf("exact Source = %q, want replay (trace tier)", exact.Source)
	}
	if render(exact, bio.SizeTest) == render(sampled2, bio.SizeTest) {
		t.Error("exact and sampled profiles are identical — sampled artifact leaked into the exact tier")
	}
}

// TestExactByteIdenticalAcrossTiers is the golden guarantee: with
// sampled requests interleaved, accuracy=exact renders byte-identical
// profiles from every serve tier — cold, snapshot, trace replay, and
// peer fetch.
func TestExactByteIdenticalAcrossTiers(t *testing.T) {
	ctx := context.Background()
	p, err := bio.ByName("predator")
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(p, false, compiler.Default())

	// Cold, storeless.
	s0 := NewSession(1)
	s0.SetSimPoint(testSimPoint)
	cold, err := s0.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	want := render(cold, bio.SizeTest)
	if cold.Source != "cold" {
		t.Errorf("cold Source = %q", cold.Source)
	}

	// Store-backed cold with a sampled request interleaved.
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	s1 := NewSessionWithStore(1, st)
	s1.SetSimPoint(testSimPoint)
	if _, err := s1.CharacterizeAccuracy(ctx, p, bio.SizeTest, AccuracySampled); err != nil {
		t.Fatal(err)
	}
	prof, err := s1.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(prof, bio.SizeTest); got != want {
		t.Errorf("store-backed exact differs from cold (source %s)", prof.Source)
	}

	// Snapshot tier.
	s2 := NewSessionWithStore(1, st)
	prof2, err := s2.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if prof2.Source != "snapshot" {
		t.Errorf("tier = %q, want snapshot", prof2.Source)
	}
	if got := render(prof2, bio.SizeTest); got != want {
		t.Error("snapshot tier differs from cold")
	}

	// Replay tier: drop the exact snapshot, keep the trace.
	st.Delete(profKey(fp, bio.SizeTest))
	s3 := NewSessionWithStore(1, st)
	prof3, err := s3.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if prof3.Source != "replay" {
		t.Errorf("tier = %q, want replay", prof3.Source)
	}
	if got := render(prof3, bio.SizeTest); got != want {
		t.Error("replay tier differs from cold")
	}

	// Peer tier: fresh store, artifact only on the fake remote.
	remote := newFakeRemote()
	if data, ok := st.GetBytes(profKey(fp, bio.SizeTest)); ok {
		remote.artifacts[profKey(fp, bio.SizeTest)] = data
	} else {
		t.Fatal("replay tier did not re-persist the snapshot")
	}
	st4 := openStore(t, t.TempDir())
	defer st4.Close()
	s4 := NewSessionWithStore(1, st4)
	s4.SetRemote(remote)
	prof4, err := s4.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if prof4.Source != "peer" {
		t.Errorf("tier = %q, want peer", prof4.Source)
	}
	if got := render(prof4, bio.SizeTest); got != want {
		t.Error("peer tier differs from cold")
	}
}
