package runner

import (
	"context"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/simpoint"
)

// TestSampledClassBWithinTolerance pins each program's classB sampled
// error to its checked-in budget (internal/simpoint/
// tolerances_classB.json). classB is the regime the tolerances are
// tuned for: default 256Ki-event intervals give every program enough
// intervals to cluster, so a regression here means the phase analysis
// itself drifted, not that the input was too small.
func TestSampledClassBWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("classB characterization is too slow for -short")
	}
	ctx := context.Background()
	for _, p := range bio.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			tol, ok := simpoint.ToleranceClassB(p.Name)
			if !ok {
				t.Fatalf("no classB tolerance checked in for %s", p.Name)
			}
			s := NewSession(2)
			exact, err := s.Characterize(ctx, p, bio.SizeB)
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := s.CharacterizeAccuracy(ctx, p, bio.SizeB, AccuracySampled)
			if err != nil {
				t.Fatal(err)
			}
			if sampled.Source != "sampled" {
				t.Fatalf("Source = %q, want sampled (degraded at classB?)", sampled.Source)
			}
			diffs, max := simpoint.ProfileError(exact.Analysis, sampled.Analysis)
			if max > tol {
				t.Errorf("sampled error %.2f pp exceeds the %.2f pp classB budget: %v", max, tol, diffs)
			}
		})
	}
}
