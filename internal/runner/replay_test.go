package runner

import (
	"bytes"
	"context"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/sim"
	"bioperfload/internal/trace"
)

// TestReplayAnalyzeShardedMatchesSequential is the shard-fidelity
// golden test: ReplayAnalyze with shards forced on (small chunks, many
// workers) must render a profile byte-identical to both the sequential
// replay and the live analysis — warm-up windows and the minSeq gate
// have to hide every shard boundary.
func TestReplayAnalyzeShardedMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"hmmsearch", "predator"} {
		p, err := bio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := p.Compile(false, compiler.Default())
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Bind(m, bio.SizeTest); err != nil {
			t.Fatal(err)
		}
		live := loadchar.New(prog)
		m.AddBatchObserver(live)
		var buf bytes.Buffer
		// A tiny chunk size forces a multi-chunk trace at test size, so
		// jobs > 1 genuinely splits the index into shards.
		tw := trace.NewWriter(&buf, trace.Meta{Program: name, Size: "test", ChunkEvents: 4096}, prog)
		m.AddBatchObserver(tw)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		want := loadchar.RenderProfile(name, "test", live, 10)

		for _, jobs := range []int{1, 2, 4, 7} {
			ir, err := trace.NewIndexedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if jobs > 1 && ir.Chunks() < 2 {
				t.Fatalf("%s: trace has %d chunks, cannot force sharding", name, ir.Chunks())
			}
			a, err := ReplayAnalyze(ctx, prog, ir, jobs)
			if err != nil {
				t.Fatalf("%s jobs=%d: %v", name, jobs, err)
			}
			if got := loadchar.RenderProfile(name, "test", a, 10); got != want {
				t.Errorf("%s jobs=%d: sharded replay profile differs from live:\n--- live ---\n%s\n--- sharded ---\n%s",
					name, jobs, want, got)
			}
		}
	}
}

// TestReplayCrossVersionProfileMatrix is the back-compat golden
// matrix: one simulated run recorded simultaneously at every trace
// format version must replay to a profile byte-identical to the live
// analysis — v1 through the sequential reader, v2+ through the
// indexed sharded engine at several worker counts.
func TestReplayCrossVersionProfileMatrix(t *testing.T) {
	ctx := context.Background()
	const name = "hmmsearch"
	p, err := bio.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(m, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	live := loadchar.New(prog)
	m.AddBatchObserver(live)
	bufs := make([]bytes.Buffer, trace.FormatVersion)
	tws := make([]*trace.Writer, trace.FormatVersion)
	for v := 1; v <= trace.FormatVersion; v++ {
		tws[v-1] = trace.NewWriterVersion(&bufs[v-1],
			trace.Meta{Program: name, Size: "test", ChunkEvents: 4096}, prog, v)
		m.AddBatchObserver(tws[v-1])
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for v, tw := range tws {
		if err := tw.Close(); err != nil {
			t.Fatalf("v%d: close: %v", v+1, err)
		}
	}
	want := loadchar.RenderProfile(name, "test", live, 10)

	for v := 1; v <= trace.FormatVersion; v++ {
		data := bufs[v-1].Bytes()
		if v == 1 {
			tr, err := trace.NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("v1: %v", err)
			}
			a := loadchar.New(prog)
			if _, err := tr.Replay(ctx, prog, a); err != nil {
				t.Fatalf("v1: replay: %v", err)
			}
			if got := loadchar.RenderProfile(name, "test", a, 10); got != want {
				t.Errorf("v1: sequential replay profile differs from live")
			}
			continue
		}
		for _, jobs := range []int{1, 4, 8} {
			ir, err := trace.NewIndexedReader(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatalf("v%d: %v", v, err)
			}
			a, err := ReplayAnalyze(ctx, prog, ir, jobs)
			if err != nil {
				t.Fatalf("v%d jobs=%d: %v", v, jobs, err)
			}
			if got := loadchar.RenderProfile(name, "test", a, 10); got != want {
				t.Errorf("v%d jobs=%d: replay profile differs from live", v, jobs)
			}
		}
	}
}
