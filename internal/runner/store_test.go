package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreWarmRestart is the persistence acceptance test: a second
// session opening the same store serves a characterization without
// compiling or simulating — from the persisted snapshot, or by trace
// replay when the snapshot is gone — and the profile is byte-identical
// to the cold run's in every case.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(p, false, compiler.Default())

	st1 := openStore(t, dir)
	s1 := NewSessionWithStore(1, st1)
	prof1, err := s1.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	want := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), prof1.Analysis, 10)
	if st := s1.Stats(); st.Runs != 1 || st.ReplayRuns != 0 || st.ProfileHits != 0 {
		t.Fatalf("cold session stats %+v", st)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the snapshot artifact serves directly.
	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := NewSessionWithStore(1, st2)
	prof2, err := s2.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Runs != 0 || st.Compiles != 0 || st.ProfileHits != 1 || st.ReplayRuns != 0 {
		t.Fatalf("warm session simulated or compiled: %+v", st)
	}
	if prof2.Instructions != prof1.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", prof2.Instructions, prof1.Instructions)
	}
	got := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), prof2.Analysis, 10)
	if got != want {
		t.Errorf("snapshot profile differs from cold profile:\n--- cold ---\n%s\n--- snapshot ---\n%s", want, got)
	}
	if ss := st2.Stats(); ss.Hits < 1 {
		t.Fatalf("expected store hits, got %+v", ss)
	}

	// Delete the snapshot: the trace remains, so a restart falls back
	// to component-parallel replay (jobs > 1) and re-persists the
	// snapshot on the way out.
	st3 := openStore(t, dir)
	defer st3.Close()
	st3.Delete(profKey(fp, bio.SizeTest))
	s3 := NewSessionWithStore(2, st3)
	prof3, err := s3.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Runs != 0 || st.ReplayRuns != 1 || st.ProfileHits != 0 {
		t.Fatalf("replay session stats %+v", st)
	}
	if got := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), prof3.Analysis, 10); got != want {
		t.Errorf("parallel replay profile differs from cold profile")
	}
	if _, ok := st3.GetBytes(profKey(fp, bio.SizeTest)); !ok {
		t.Fatal("replay did not re-persist the snapshot artifact")
	}

	// Sequential replay (jobs == 1) must also match.
	st4 := openStore(t, dir)
	defer st4.Close()
	st4.Delete(profKey(fp, bio.SizeTest))
	s4 := NewSessionWithStore(1, st4)
	prof4, err := s4.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if st := s4.Stats(); st.Runs != 0 || st.ReplayRuns != 1 {
		t.Fatalf("sequential replay session stats %+v", st)
	}
	if got := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), prof4.Analysis, 10); got != want {
		t.Errorf("sequential replay profile differs from cold profile")
	}
}

// TestStoreCorruptionFallsBackToSimulation flips bits in every stored
// object: the next characterization must detect the damage, evict, and
// silently fall back to a cold (and re-recorded) simulation.
func TestStoreCorruptionFallsBackToSimulation(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p, err := bio.ByName("predator")
	if err != nil {
		t.Fatal(err)
	}

	st1 := openStore(t, dir)
	s1 := NewSessionWithStore(1, st1)
	prof1, err := s1.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	want := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), prof1.Analysis, 10)
	st1.Close()

	// Vandalize every object file.
	err = filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i := range data {
			data[i] ^= 0xa5
		}
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := NewSessionWithStore(1, st2)
	prof2, err := s2.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatalf("characterize with corrupted store: %v", err)
	}
	if st := s2.Stats(); st.Runs != 1 || st.ReplayRuns != 0 || st.ProfileHits != 0 {
		t.Fatalf("corrupted store did not fall back to simulation: %+v", st)
	}
	if got := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), prof2.Analysis, 10); got != want {
		t.Errorf("fallback profile differs from original")
	}

	// The fallback run re-recorded and re-persisted; a third session
	// serves warm again without simulating.
	st3 := openStore(t, dir)
	defer st3.Close()
	s3 := NewSessionWithStore(1, st3)
	if _, err := s3.Characterize(ctx, p, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Runs != 0 || st.ProfileHits+st.ReplayRuns != 1 {
		t.Fatalf("re-recorded artifacts not served warm: %+v", st)
	}
}

// TestStoreCancellationNotMisreadAsCorruption: a canceled context
// during replay must surface the context error and leave the stored
// trace intact for the next caller.
func TestStoreCancellationNotMisreadAsCorruption(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	st1 := openStore(t, dir)
	s1 := NewSessionWithStore(1, st1)
	if _, err := s1.Characterize(ctx, p, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	// Drop the snapshot so the warm path must go through trace replay.
	st2.Delete(profKey(Fingerprint(p, false, compiler.Default()), bio.SizeTest))
	s2 := NewSessionWithStore(1, st2)
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s2.Characterize(canceled, p, bio.SizeTest); err == nil {
		t.Fatal("characterize with canceled context succeeded")
	}
	// The trace entry must still be there: a fresh context replays.
	if _, err := s2.Characterize(ctx, p, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Runs != 0 || st.ReplayRuns != 1 {
		t.Fatalf("trace was evicted by cancellation: %+v", st)
	}
}

// TestFingerprintSensitivity: the fingerprint must change with any
// input that affects replay fidelity.
func TestFingerprintSensitivity(t *testing.T) {
	h, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := bio.ByName("predator")
	if err != nil {
		t.Fatal(err)
	}
	base := Fingerprint(h, false, compiler.Default())
	if base == Fingerprint(pr, false, compiler.Default()) {
		t.Error("different programs share a fingerprint")
	}
	o0 := compiler.Options{}
	if base == Fingerprint(h, false, o0) {
		t.Error("different compiler options share a fingerprint")
	}
	if base != Fingerprint(h, false, compiler.Default()) {
		t.Error("fingerprint is not deterministic")
	}
}
