package runner

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/sim"
	"bioperfload/internal/simpoint"
	"bioperfload/internal/trace"
)

// sampledProfKey extends the exact profile key with the sampling
// tier and the full sampling configuration: a sampled snapshot is an
// approximation and is only interchangeable with requests sharing
// every knob that shaped it.
func sampledProfKey(fp string, sz bio.Size, cfg simpoint.Config) string {
	return profKey(fp, sz) + "|sampled|" + cfg.Fingerprint()
}

// characterizeSampled is the AccuracySampled serve path: snapshot tier
// first, then phase analysis over the recorded trace (recording one
// cold if the store has none), degrading to the exact path whenever
// the trace or program is too small to sample.
func (s *Session) characterizeSampled(ctx context.Context, p *bio.Program, sz bio.Size) (*Profile, error) {
	cfg := s.SimPoint()
	degrade := func(reason string) (*Profile, error) {
		s.sampledDegrades.Add(1)
		log.Printf("runner: %s/%s: sampled characterization degraded to exact: %s", p.Name, sz, reason)
		return s.Characterize(ctx, p, sz)
	}

	var fp string
	if s.store != nil {
		fp = Fingerprint(p, false, compiler.Default())
		if prof, ok := s.loadSampledProfile(p, sz, fp, cfg); ok {
			s.sampledHits.Add(1)
			return prof, nil
		}
	}

	prog, err := s.Compile(p, false, compiler.Default())
	if err != nil {
		return nil, err
	}
	if simpoint.BlockMap(prog).NumBlocks() <= 1 {
		return degrade("program has a single basic block")
	}

	ir, cleanup, err := s.sampledTrace(ctx, p, sz, fp, prog)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	a, _, err := SampledAnalyze(ctx, prog, ir, cfg, s.jobs)
	var de *simpoint.DegradeError
	if errors.As(err, &de) {
		return degrade(de.Reason)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	prof := &Profile{Name: p.Name, Instructions: ir.TotalEvents(), Analysis: a, Source: "sampled"}
	s.sampledChars.Add(1)
	if s.store != nil {
		s.storeSampledProfile(prof, sz, fp, cfg)
	}
	return prof, nil
}

// SampledAnalyze runs the whole sampled pipeline over an indexed
// trace: interval collection, clustering, representative replay with
// warmup, and weighted extrapolation into one analysis. It is the
// engine under the session's sampled tier and `bioperf bench-sampling`.
// A *simpoint.DegradeError means the trace is too small to sample.
// The representative replays fan out perfectly — each owns a private
// analysis — so jobs bounds both the collection scan and the replays.
func SampledAnalyze(ctx context.Context, prog *isa.Program, ir *trace.IndexedReader, cfg simpoint.Config, jobs int) (*loadchar.Analysis, *simpoint.Plan, error) {
	cfg = cfg.WithDefaults()
	intervals, err := simpoint.CollectTrace(ctx, prog, ir, cfg, jobs)
	if err != nil {
		return nil, nil, fmt.Errorf("collect intervals: %w", err)
	}
	plan, err := simpoint.BuildPlan(intervals, cfg)
	if err != nil {
		return nil, nil, err
	}
	deltas := make([]*loadchar.Snapshot, len(plan.Clusters))
	err = parallelEach(ctx, jobs, len(plan.Clusters), func(i int) error {
		c := plan.Clusters[i]
		snap, err := replayInterval(ctx, prog, ir, c.Start, c.End, plan.Config.WarmupEvents)
		if err != nil {
			return fmt.Errorf("replay interval [%d,%d): %w", c.Start, c.End, err)
		}
		snap.Scale(c.Weight)
		deltas[i] = snap
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	merged := deltas[0]
	for _, d := range deltas[1:] {
		if err := merged.Merge(d); err != nil {
			return nil, nil, fmt.Errorf("merge cluster snapshots: %w", err)
		}
	}
	a, err := loadchar.FromSnapshot(prog, merged)
	if err != nil {
		return nil, nil, fmt.Errorf("restore sampled snapshot: %w", err)
	}
	return a, plan, nil
}

// parallelEach is ForEach without a session: run fn for every index on
// up to jobs goroutines, returning the first error.
func parallelEach(ctx context.Context, jobs, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replayInterval characterizes exactly the events in [start, end) with
// warmed microarchitectural state: a fresh analysis replays from a
// chunk boundary at least warm events before start, a snapshot taken
// right as the stream crosses start is subtracted from the final one,
// and the difference is the interval's exact counts under the warmed
// cache and predictor. Both prefixes are deterministic, so the
// subtraction is exact, not approximate.
func replayInterval(ctx context.Context, prog *isa.Program, ir *trace.IndexedReader, start, end, warm uint64) (*loadchar.Snapshot, error) {
	warmStart := uint64(0)
	if start > warm {
		warmStart = start - warm
	}
	n := ir.Chunks()
	lo := sort.Search(n, func(i int) bool { return ir.Base(i) > warmStart }) - 1
	if lo < 0 {
		lo = 0
	}
	hi := sort.Search(n, func(i int) bool { return ir.Base(i) >= end })

	a := loadchar.New(prog)
	var pre *loadchar.Snapshot
	src := ir.Range(prog, lo, hi)
	defer src.Close()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		evs, release, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		base := evs[0].Seq
		if base >= end {
			release()
			break
		}
		if base+uint64(len(evs)) > end {
			evs = evs[:end-base]
		}
		if pre == nil {
			if base >= start {
				pre = a.Snapshot()
			} else if base+uint64(len(evs)) > start {
				cut := start - base
				a.ObserveBatch(evs[:cut])
				pre = a.Snapshot()
				evs = evs[cut:]
			}
		}
		if len(evs) > 0 {
			a.ObserveBatch(evs)
		}
		last := base + uint64(len(evs))
		release()
		if last >= end {
			break
		}
	}
	if pre == nil {
		return nil, fmt.Errorf("trace ended before interval start %d", start)
	}
	final := a.Snapshot()
	if err := final.Sub(pre); err != nil {
		return nil, err
	}
	return final, nil
}

// sampledTrace opens an indexed reader over the trace for (p, sz),
// producing one if necessary. With a store the trace is recorded
// through it (and reused by every later request, exact or sampled);
// without one the trace lives in memory for the duration of the call.
func (s *Session) sampledTrace(ctx context.Context, p *bio.Program, sz bio.Size, fp string, prog *isa.Program) (*trace.IndexedReader, func(), error) {
	noop := func() {}
	if s.store != nil {
		if ir, cleanup, ok := s.openTrace(p, sz, fp); ok {
			return ir, cleanup, nil
		}
		// Record a fresh trace cold — the run carries no analysis, so it
		// is much cheaper than a cold exact characterization.
		if err := s.recordTrace(ctx, p, sz, fp, prog, nil); err != nil {
			return nil, noop, err
		}
		if ir, cleanup, ok := s.openTrace(p, sz, fp); ok {
			return ir, cleanup, nil
		}
		return nil, noop, fmt.Errorf("%s: trace unreadable immediately after recording", p.Name)
	}
	var buf bytes.Buffer
	if err := s.recordTrace(ctx, p, sz, fp, prog, &buf); err != nil {
		return nil, noop, err
	}
	ir, err := trace.NewIndexedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		return nil, noop, fmt.Errorf("%s: index in-memory trace: %w", p.Name, err)
	}
	return ir, noop, nil
}

// openTrace opens the stored trace as an indexed reader, evicting
// anything unindexable or mismatched.
func (s *Session) openTrace(p *bio.Program, sz bio.Size, fp string) (*trace.IndexedReader, func(), bool) {
	key := traceKey(fp, sz)
	rc, size, ok := s.store.OpenReader(key)
	if !ok {
		return nil, nil, false
	}
	ra, isRA := rc.(io.ReaderAt)
	if !isRA {
		rc.Close()
		return nil, nil, false
	}
	ir, err := trace.NewIndexedReader(ra, size)
	if err != nil {
		rc.Close()
		s.store.Delete(key)
		return nil, nil, false
	}
	if m := ir.Meta(); m.Program != p.Name || m.Fingerprint != fp {
		rc.Close()
		s.store.Delete(key)
		return nil, nil, false
	}
	return ir, func() { rc.Close() }, true
}

// recordTrace runs the program once with only a trace writer attached.
// With w == nil the trace is committed to the store; otherwise it is
// written to w.
func (s *Session) recordTrace(ctx context.Context, p *bio.Program, sz bio.Size, fp string, prog *isa.Program, w *bytes.Buffer) error {
	m, err := sim.New(prog)
	if err != nil {
		return err
	}
	if err := p.Bind(m, sz); err != nil {
		return fmt.Errorf("%s: bind: %w", p.Name, err)
	}
	var rec *recorder
	var tw *trace.Writer
	if w != nil {
		tw = trace.NewWriter(w, trace.Meta{Program: p.Name, Fingerprint: fp, Size: sz.String()}, prog)
		m.AddBatchObserver(tw)
	} else {
		rec = s.startRecording(m, p, sz, fp, prog)
		if rec == nil {
			return fmt.Errorf("%s: store rejected trace recording", p.Name)
		}
	}
	s.runs.Add(1)
	res, err := m.RunContext(ctx)
	if err != nil {
		rec.abort()
		return fmt.Errorf("%s: %w", p.Name, err)
	}
	if err := p.Validate(res, sz); err != nil {
		rec.abort()
		return err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return fmt.Errorf("%s: close trace: %w", p.Name, err)
		}
		if tw.Events() != res.Instructions {
			return fmt.Errorf("%s: trace recorded %d events, run committed %d", p.Name, tw.Events(), res.Instructions)
		}
		return nil
	}
	rec.commit(res.Instructions)
	return nil
}

// PhasePlan exposes the sampling decision for one (program, size): the
// interval timeline and clustering the sampled path would use. It is
// what `bioperf phases` renders. A *simpoint.DegradeError reports a
// trace too small to sample.
func (s *Session) PhasePlan(ctx context.Context, p *bio.Program, sz bio.Size) (*simpoint.Plan, error) {
	cfg := s.SimPoint()
	prog, err := s.Compile(p, false, compiler.Default())
	if err != nil {
		return nil, err
	}
	if simpoint.BlockMap(prog).NumBlocks() <= 1 {
		return nil, &simpoint.DegradeError{Reason: "program has a single basic block"}
	}
	var fp string
	if s.store != nil {
		fp = Fingerprint(p, false, compiler.Default())
	}
	ir, cleanup, err := s.sampledTrace(ctx, p, sz, fp, prog)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	intervals, err := simpoint.CollectTrace(ctx, prog, ir, cfg, s.jobs)
	if err != nil {
		return nil, fmt.Errorf("%s: collect intervals: %w", p.Name, err)
	}
	return simpoint.BuildPlan(intervals, cfg)
}

// loadSampledProfile serves a sampled characterization from its
// persisted snapshot; the artifact format is identical to the exact
// one, only the key differs.
func (s *Session) loadSampledProfile(p *bio.Program, sz bio.Size, fp string, cfg simpoint.Config) (*Profile, bool) {
	key := sampledProfKey(fp, sz, cfg)
	data, ok := s.store.GetBytes(key)
	if !ok {
		return nil, false
	}
	art, err := decodeProfileArtifact(data, fp)
	if err != nil {
		s.store.Delete(key)
		return nil, false
	}
	prog, err := s.Compile(p, false, compiler.Default())
	if err != nil {
		return nil, false
	}
	a, err := loadchar.FromSnapshot(prog, art.Snap)
	if err != nil {
		s.store.Delete(key)
		return nil, false
	}
	return &Profile{Name: p.Name, Instructions: art.Instructions, Analysis: a, Source: "sampled"}, true
}

func (s *Session) storeSampledProfile(prof *Profile, sz bio.Size, fp string, cfg simpoint.Config) {
	if prof == nil || prof.Analysis == nil {
		return
	}
	var buf bytes.Buffer
	art := profileArtifact{Fingerprint: fp, Instructions: prof.Instructions, Snap: prof.Analysis.Snapshot()}
	if err := gob.NewEncoder(&buf).Encode(&art); err != nil {
		return
	}
	key := sampledProfKey(fp, sz, cfg)
	if err := s.store.PutBytes(key, buf.Bytes()); err != nil {
		return
	}
	if s.remote != nil {
		s.remote.Replicate(key, buf.Bytes())
	}
}
