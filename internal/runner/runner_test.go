package runner

import (
	"errors"
	"sync"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/platform"
)

// TestCharacterizeRunsOnce is the tentpole's acceptance test: one
// session performs exactly one functional characterization run per
// (program, size), no matter how many analyses ask for it, and the
// cache-hit counters prove the sharing happened.
func TestCharacterizeRunsOnce(t *testing.T) {
	s := NewSession(4)
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Characterize(p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	// Ten concurrent re-requests: all must get the same shared
	// profile without triggering another simulation.
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prof, err := s.Characterize(p, bio.SizeTest)
			if err != nil {
				t.Error(err)
				return
			}
			if prof != first {
				t.Error("got a different profile object: run not shared")
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want exactly 1", st.Runs)
	}
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want exactly 1", st.Compiles)
	}
	if st.CharacterizeHits != 10 {
		t.Errorf("CharacterizeHits = %d, want 10", st.CharacterizeHits)
	}
}

// TestCharacterizeAllRunsOnce: the nine-program fan-out performs nine
// runs, and repeating it performs zero more.
func TestCharacterizeAllRunsOnce(t *testing.T) {
	s := NewSession(0)
	if _, err := s.CharacterizeAll(bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Runs != 9 || st.Compiles != 9 {
		t.Errorf("after first pass: Runs=%d Compiles=%d, want 9/9", st.Runs, st.Compiles)
	}
	if _, err := s.CharacterizeAll(bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Runs != 9 || st.Compiles != 9 {
		t.Errorf("after second pass: Runs=%d Compiles=%d, want still 9/9", st.Runs, st.Compiles)
	}
	if st.CharacterizeHits != 9 {
		t.Errorf("CharacterizeHits = %d, want 9", st.CharacterizeHits)
	}
}

// TestCompileCacheSharesAcrossTimingRuns: timing runs are never
// memoized (each trains a fresh model) but their compiles are.
func TestCompileCacheSharesAcrossTimingRuns(t *testing.T) {
	s := NewSession(2)
	p, err := bio.ByName("clustalw")
	if err != nil {
		t.Fatal(err)
	}
	plat, err := platform.ByName("alpha21264")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Evaluate(p, plat, bio.SizeTest, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Evaluate(p, plat, bio.SizeTest, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("timing runs diverged: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	st := s.Stats()
	if st.Compiles != 1 || st.CompileHits != 1 {
		t.Errorf("Compiles=%d CompileHits=%d, want 1/1", st.Compiles, st.CompileHits)
	}
	if st.Runs != 2 {
		t.Errorf("Runs = %d, want 2 (timing runs are never cached)", st.Runs)
	}
}

// TestConcurrentCompileSingleflight: many goroutines requesting the
// same compile key trigger exactly one compilation.
func TestConcurrentCompileSingleflight(t *testing.T) {
	s := NewSession(8)
	p, err := bio.ByName("blast")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	progs := make([]interface{}, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog, err := s.Compile(p, false, compiler.Default())
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = prog
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a distinct compilation artifact", i)
		}
	}
	if st := s.Stats(); st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", st.Compiles)
	}
}

// TestForEachDeterministicOrder: results land in caller-indexed slots
// regardless of pool width.
func TestForEachDeterministicOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		s := NewSession(jobs)
		out := make([]int, 100)
		if err := s.ForEach(100, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d", jobs, i, v)
			}
		}
	}
}

// TestForEachLowestIndexError: a parallel session reports the same
// error a sequential loop would surface first.
func TestForEachLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, jobs := range []int{1, 4} {
		s := NewSession(jobs)
		err := s.ForEach(50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 40:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("jobs=%d: got %v, want the lowest-index error", jobs, err)
		}
	}
}
