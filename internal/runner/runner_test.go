package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/platform"
)

// TestCharacterizeRunsOnce is the tentpole's acceptance test: one
// session performs exactly one functional characterization run per
// (program, size), no matter how many analyses ask for it, and the
// cache-hit counters prove the sharing happened.
func TestCharacterizeRunsOnce(t *testing.T) {
	s := NewSession(4)
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Characterize(context.Background(), p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	// Ten concurrent re-requests: all must get the same shared
	// profile without triggering another simulation.
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prof, err := s.Characterize(context.Background(), p, bio.SizeTest)
			if err != nil {
				t.Error(err)
				return
			}
			if prof != first {
				t.Error("got a different profile object: run not shared")
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want exactly 1", st.Runs)
	}
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want exactly 1", st.Compiles)
	}
	if st.CharacterizeHits != 10 {
		t.Errorf("CharacterizeHits = %d, want 10", st.CharacterizeHits)
	}
}

// TestCharacterizeAllRunsOnce: the nine-program fan-out performs nine
// runs, and repeating it performs zero more.
func TestCharacterizeAllRunsOnce(t *testing.T) {
	s := NewSession(0)
	if _, err := s.CharacterizeAll(context.Background(), bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Runs != 9 || st.Compiles != 9 {
		t.Errorf("after first pass: Runs=%d Compiles=%d, want 9/9", st.Runs, st.Compiles)
	}
	if _, err := s.CharacterizeAll(context.Background(), bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Runs != 9 || st.Compiles != 9 {
		t.Errorf("after second pass: Runs=%d Compiles=%d, want still 9/9", st.Runs, st.Compiles)
	}
	if st.CharacterizeHits != 9 {
		t.Errorf("CharacterizeHits = %d, want 9", st.CharacterizeHits)
	}
}

// TestCompileCacheSharesAcrossTimingRuns: timing runs are never
// memoized (each trains a fresh model) but their compiles are.
func TestCompileCacheSharesAcrossTimingRuns(t *testing.T) {
	s := NewSession(2)
	p, err := bio.ByName("clustalw")
	if err != nil {
		t.Fatal(err)
	}
	plat, err := platform.ByName("alpha21264")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Evaluate(context.Background(), p, plat, bio.SizeTest, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Evaluate(context.Background(), p, plat, bio.SizeTest, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("timing runs diverged: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	st := s.Stats()
	if st.Compiles != 1 || st.CompileHits != 1 {
		t.Errorf("Compiles=%d CompileHits=%d, want 1/1", st.Compiles, st.CompileHits)
	}
	if st.Runs != 2 {
		t.Errorf("Runs = %d, want 2 (timing runs are never cached)", st.Runs)
	}
}

// TestConcurrentCompileSingleflight: many goroutines requesting the
// same compile key trigger exactly one compilation.
func TestConcurrentCompileSingleflight(t *testing.T) {
	s := NewSession(8)
	p, err := bio.ByName("blast")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	progs := make([]interface{}, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog, err := s.Compile(p, false, compiler.Default())
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = prog
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a distinct compilation artifact", i)
		}
	}
	if st := s.Stats(); st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", st.Compiles)
	}
}

// TestForEachDeterministicOrder: results land in caller-indexed slots
// regardless of pool width.
func TestForEachDeterministicOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		s := NewSession(jobs)
		out := make([]int, 100)
		if err := s.ForEach(context.Background(), 100, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d", jobs, i, v)
			}
		}
	}
}

// TestForEachLowestIndexError: a parallel session reports the same
// error a sequential loop would surface first.
func TestForEachLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, jobs := range []int{1, 4} {
		s := NewSession(jobs)
		err := s.ForEach(context.Background(), 50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 40:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("jobs=%d: got %v, want the lowest-index error", jobs, err)
		}
	}
}

// TestCharacterizeCancellation: a canceled context stops a
// characterization run promptly, the failure is NOT memoized (the
// cache entry is evicted), and a later request with a live context
// runs and succeeds.
func TestCharacterizeCancellation(t *testing.T) {
	s := NewSession(1)
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.Characterize(ctx, p, bio.SizeB); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("canceled run took %v, want prompt return", elapsed)
	}
	// The cancellation must not poison the cache: the retry runs the
	// simulation for real and succeeds.
	prof, err := s.Characterize(context.Background(), p, bio.SizeTest)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if prof == nil || prof.Instructions == 0 {
		t.Fatal("retry returned an empty profile")
	}
}

// TestEvaluateCancellation: timing runs honor cancellation too.
func TestEvaluateCancellation(t *testing.T) {
	s := NewSession(1)
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	plat, err := platform.ByName("alpha21264")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Evaluate(ctx, p, plat, bio.SizeB, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestForEachCancellation: a canceled context stops dispatching new
// indices and the sweep reports the cancellation.
func TestForEachCancellation(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		s := NewSession(jobs)
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := s.ForEach(ctx, 1000, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("jobs=%d: got %v, want context.Canceled", jobs, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Errorf("jobs=%d: all %d indices ran despite cancellation", jobs, n)
		}
		cancel()
	}
}
