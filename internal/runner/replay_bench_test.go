package runner

import (
	"context"
	"os"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/sim"
	"bioperfload/internal/trace"
)

// benchRecord compiles p, simulates it once at sz with a trace writer
// attached, and returns the program plus the recorded trace file.
func benchRecord(b *testing.B, name string, sz bio.Size) (*bio.Program, *os.File, int64, func() *sim.Machine) {
	b.Helper()
	p, err := bio.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		b.Fatal(err)
	}
	newMachine := func() *sim.Machine {
		m, err := sim.New(prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Bind(m, sz); err != nil {
			b.Fatal(err)
		}
		return m
	}
	tf, err := os.CreateTemp(b.TempDir(), "bench-*.trace")
	if err != nil {
		b.Fatal(err)
	}
	m := newMachine()
	tw := trace.NewWriter(tf, trace.Meta{Program: p.Name, Size: sz.String()}, prog)
	m.AddBatchObserver(tw)
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	size, err := tf.Seek(0, 2)
	if err != nil {
		b.Fatal(err)
	}
	prog.Symbol("")
	return p, tf, size, newMachine
}

// BenchmarkReplayAnalyze measures the warm path: indexed decode plus
// the full analysis, no simulation. Compare against
// BenchmarkColdCharacterize — the replay_speedup acceptance criterion
// is exactly this ratio.
func BenchmarkReplayAnalyze(b *testing.B) {
	p, tf, size, _ := benchRecord(b, "hmmsearch", bio.SizeTest)
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir, err := trace.NewIndexedReader(tf, size)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReplayAnalyze(context.Background(), prog, ir, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdCharacterize measures the cold path: simulate with the
// live analyzer attached.
func BenchmarkColdCharacterize(b *testing.B) {
	p, _, _, newMachine := benchRecord(b, "hmmsearch", bio.SizeTest)
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := newMachine()
		a := loadchar.New(prog)
		m.AddBatchObserver(a)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
