// Package runner is the shared-artifact analysis engine behind the
// experiment generators. The paper's original apparatus (ATOM)
// instrumented each binary once and derived every analysis from that
// single run; the seed code instead recompiled and re-simulated each
// kernel for every table and figure. A Session restores the
// run-once/analyze-many discipline:
//
//   - a memoizing compile cache keyed by (program, variant, compiler
//     options), so each kernel is compiled once per session;
//   - a characterization cache keyed by (program, input size), so one
//     functional simulation feeds the instruction mix, load-coverage,
//     cache, branch-predictor, sequence-tracking, and hot-load
//     analyses (they all live in one loadchar.Analysis attached to
//     that single run);
//   - a bounded worker pool (ForEach) that fans independent
//     simulations out across cores with deterministic output ordering
//     — results land in caller-indexed slots, and the reported error
//     is always the lowest-index failure, so a parallel session is
//     byte-identical to a sequential one.
//
// Timing runs (Evaluate) are deliberately not memoized: every call
// must train a fresh pipeline model. They still share the compile
// cache, which is where Table 8's redundancy lived.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/scoreboard"
	"bioperfload/internal/sim"
	"bioperfload/internal/simpoint"
	"bioperfload/internal/store"
	"bioperfload/internal/trace"
)

// CompileKey identifies one compilation artifact. compiler.Options is
// a flat comparable struct, so the key is directly usable in a map.
type CompileKey struct {
	Program     string
	Transformed bool
	Opts        compiler.Options
}

type compileEntry struct {
	once sync.Once
	prog *isa.Program
	err  error
}

// Accuracy selects a characterization tier: exact (every event
// analyzed) or sampled (SimPoint-style phase analysis: representative
// intervals analyzed, counts extrapolated by cluster weight).
type Accuracy string

const (
	// AccuracyExact is the default full-stream characterization.
	AccuracyExact Accuracy = "exact"
	// AccuracySampled characterizes representative intervals only and
	// extrapolates; it degrades to exact when the trace is too small.
	AccuracySampled Accuracy = "sampled"
)

// ParseAccuracy maps user-facing accuracy spellings to the tier; the
// empty string selects exact.
func ParseAccuracy(s string) (Accuracy, error) {
	switch s {
	case "", "exact":
		return AccuracyExact, nil
	case "sampled":
		return AccuracySampled, nil
	default:
		return "", fmt.Errorf("unknown accuracy %q (want exact or sampled)", s)
	}
}

type charKey struct {
	program string
	size    bio.Size
	acc     Accuracy
}

type charEntry struct {
	once sync.Once
	prof *Profile
	err  error
}

// Profile is one program's shared characterization run: the dynamic
// instruction count and the single-pass analysis every table and
// figure reads from. Source records which serve tier produced it
// ("cold", "snapshot", "replay", "peer", or "sampled").
type Profile struct {
	Name         string
	Instructions uint64
	Analysis     *loadchar.Analysis
	Source       string
}

// Stats reports a session's cache effectiveness, for tests and for
// the -bench-json perf record.
type Stats struct {
	Compiles              uint64 `json:"compiles"`                // compile-cache misses (actual compilations)
	CompileHits           uint64 `json:"compile_hits"`            // compile-cache hits
	Runs                  uint64 `json:"runs"`                    // sim.Machine.Run invocations
	CharacterizeHits      uint64 `json:"characterize_hits"`       // characterization-cache hits
	ReplayRuns            uint64 `json:"replay_runs"`             // characterizations served by trace replay
	ReplaySerialFallbacks uint64 `json:"replay_serial_fallbacks"` // replays that requested parallelism but ran serial
	// ReplayRunsByVersion splits ReplayRuns by the trace format version
	// served ("v1".."v4"), so a fleet can watch the v4 migration drain
	// old-format artifacts. Only versions actually served appear.
	ReplayRunsByVersion map[string]uint64 `json:"replay_runs_by_version,omitempty"`
	ProfileHits         uint64            `json:"profile_hits"`     // characterizations served from persisted snapshots
	PeerHits            uint64            `json:"peer_hits"`        // characterizations served from a fleet peer's artifact
	ColdChars           uint64            `json:"cold_chars"`       // characterizations that had to simulate cold
	SampledChars        uint64            `json:"sampled_chars"`    // sampled characterizations computed from a phase plan
	SampledHits         uint64            `json:"sampled_hits"`     // sampled characterizations served from persisted snapshots
	SampledDegrades     uint64            `json:"sampled_degrades"` // sampled requests degraded to the exact path
}

// RemoteTier is the fleet hook: when a Session misses its local
// snapshot and trace tiers, it asks the remote tier for the artifact
// before paying for a cold simulation, and pushes freshly computed
// snapshots back out. internal/cluster implements it; the interface
// lives here so the runner stays ignorant of HTTP and ring layout.
type RemoteTier interface {
	// Fetch returns the verified artifact stored under key on some
	// peer, or ok=false. verify is called on candidate bytes before
	// they are accepted (a peer serving transfer-consistent but
	// semantically wrong content must be skipped, not trusted).
	Fetch(ctx context.Context, key string, verify func([]byte) error) (data []byte, ok bool)
	// Replicate pushes a freshly persisted artifact toward the nodes
	// responsible for key. It must not block on peers.
	Replicate(key string, data []byte)
}

// Session owns the caches and the worker pool. Create with
// NewSession; a Session is safe for concurrent use.
type Session struct {
	jobs   int
	store  *store.Store
	remote RemoteTier

	mu       sync.Mutex
	compiled map[CompileKey]*compileEntry
	chars    map[charKey]*charEntry

	simpointCfg simpoint.Config

	compiles        atomic.Uint64
	compileHits     atomic.Uint64
	runs            atomic.Uint64
	charHits        atomic.Uint64
	replayRuns      atomic.Uint64
	replayByVersion [trace.FormatVersion + 1]atomic.Uint64
	replaySerial    atomic.Uint64
	profileHits     atomic.Uint64
	peerHits        atomic.Uint64
	coldChars       atomic.Uint64
	sampledChars    atomic.Uint64
	sampledHits     atomic.Uint64
	sampledDegrades atomic.Uint64
}

// NewSession creates a session whose worker pool runs up to jobs
// simulations concurrently; jobs <= 0 selects GOMAXPROCS. jobs == 1
// is the fully sequential reference path the golden tests compare
// against.
func NewSession(jobs int) *Session {
	return NewSessionWithStore(jobs, nil)
}

// NewSessionWithStore creates a session backed by a persistent
// artifact store: compiled programs, committed-instruction traces,
// and characterization snapshots are written through to st, and later
// sessions opening the same store serve characterizations from the
// persisted snapshot — falling back to trace replay, then to cold
// simulation, as artifacts are missing or damaged. st may be nil
// (identical to NewSession). The session does not close the store.
func NewSessionWithStore(jobs int, st *store.Store) *Session {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Session{
		jobs:     jobs,
		store:    st,
		compiled: make(map[CompileKey]*compileEntry),
		chars:    make(map[charKey]*charEntry),
	}
}

// Jobs returns the worker-pool width.
func (s *Session) Jobs() int { return s.jobs }

// Store returns the session's artifact store, or nil.
func (s *Session) Store() *store.Store { return s.store }

// SetRemote attaches the fleet tier. It requires a local store (the
// remote tier admits fetched artifacts there) and must be called
// before the session starts serving.
func (s *Session) SetRemote(rt RemoteTier) {
	if s.store == nil {
		panic("runner: SetRemote requires a session with a store")
	}
	s.remote = rt
}

// SetSimPoint overrides the sampling configuration used by
// AccuracySampled characterizations. Must be called before the session
// starts serving; the zero config selects every simpoint default.
// Tests shrink IntervalSize so test-size runs span enough intervals to
// cluster.
func (s *Session) SetSimPoint(cfg simpoint.Config) { s.simpointCfg = cfg }

// SimPoint returns the session's sampling configuration with defaults
// applied.
func (s *Session) SimPoint() simpoint.Config { return s.simpointCfg.WithDefaults() }

// countReplay records one characterization served by trace replay,
// attributed to the trace's format version.
func (s *Session) countReplay(version int) {
	s.replayRuns.Add(1)
	if version >= 1 && version <= trace.FormatVersion {
		s.replayByVersion[version].Add(1)
	}
}

// Stats returns the session's cache counters.
func (s *Session) Stats() Stats {
	var byVersion map[string]uint64
	for v := 1; v <= trace.FormatVersion; v++ {
		if n := s.replayByVersion[v].Load(); n != 0 {
			if byVersion == nil {
				byVersion = make(map[string]uint64)
			}
			byVersion[fmt.Sprintf("v%d", v)] = n
		}
	}
	return Stats{
		Compiles:              s.compiles.Load(),
		CompileHits:           s.compileHits.Load(),
		Runs:                  s.runs.Load(),
		CharacterizeHits:      s.charHits.Load(),
		ReplayRuns:            s.replayRuns.Load(),
		ReplayRunsByVersion:   byVersion,
		ReplaySerialFallbacks: s.replaySerial.Load(),
		ProfileHits:           s.profileHits.Load(),
		PeerHits:              s.peerHits.Load(),
		ColdChars:             s.coldChars.Load(),
		SampledChars:          s.sampledChars.Load(),
		SampledHits:           s.sampledHits.Load(),
		SampledDegrades:       s.sampledDegrades.Load(),
	}
}

// Compile returns the compiled program for (p, variant, opts),
// compiling at most once per key per session. Concurrent callers of
// the same key block until the one compilation finishes. With a store
// attached, a persisted binary with a matching fingerprint is loaded
// instead of compiling, and fresh compilations are written through.
func (s *Session) Compile(p *bio.Program, transformed bool, opts compiler.Options) (*isa.Program, error) {
	key := CompileKey{Program: p.Name, Transformed: transformed && p.Transformable, Opts: opts}
	s.mu.Lock()
	e, ok := s.compiled[key]
	if !ok {
		e = &compileEntry{}
		s.compiled[key] = e
	}
	s.mu.Unlock()
	miss := false
	e.once.Do(func() {
		miss = true
		var fp string
		if s.store != nil {
			fp = Fingerprint(p, transformed, opts)
			if prog := s.loadCompiled(fp); prog != nil {
				// Force the lazy symbol index while single-threaded;
				// the program is then shared read-only across worker
				// goroutines.
				prog.Symbol("")
				e.prog = prog
				return
			}
		}
		s.compiles.Add(1)
		e.prog, e.err = p.Compile(transformed, opts)
		if e.err == nil {
			e.prog.Symbol("")
			if s.store != nil {
				s.storeCompiled(fp, e.prog)
			}
		}
	})
	if !miss {
		s.compileHits.Add(1)
	}
	return e.prog, e.err
}

// Characterize returns the program's shared characterization profile,
// compiling and functionally simulating at most once per (program,
// size) per session. Every analyzer output (mix, coverage, cache,
// branch, sequences, hot loads) reads from this one run.
//
// The run executes under the context of the caller that triggered it;
// concurrent callers of the same key share that run (and its fate).
// Cancellation and deadline errors are never memoized — the cache
// entry is evicted so a later request simply retries — because a
// caller-imposed timeout says nothing about the next caller's budget.
func (s *Session) Characterize(ctx context.Context, p *bio.Program, sz bio.Size) (*Profile, error) {
	return s.CharacterizeAccuracy(ctx, p, sz, AccuracyExact)
}

// CharacterizeAccuracy is Characterize with an explicit accuracy tier.
// Sampled and exact results are memoized under separate keys: a
// sampled profile is an approximation and must never be served to an
// exact request (or vice versa).
func (s *Session) CharacterizeAccuracy(ctx context.Context, p *bio.Program, sz bio.Size, acc Accuracy) (*Profile, error) {
	key := charKey{program: p.Name, size: sz, acc: acc}
	s.mu.Lock()
	e, ok := s.chars[key]
	if !ok {
		e = &charEntry{}
		s.chars[key] = e
	}
	s.mu.Unlock()
	miss := false
	e.once.Do(func() {
		miss = true
		if acc == AccuracySampled {
			e.prof, e.err = s.characterizeSampled(ctx, p, sz)
		} else {
			e.prof, e.err = s.characterize(ctx, p, sz)
		}
	})
	if !miss {
		s.charHits.Add(1)
	}
	if e.err != nil && isContextErr(e.err) {
		s.mu.Lock()
		if s.chars[key] == e {
			delete(s.chars, key)
		}
		s.mu.Unlock()
	}
	return e.prof, e.err
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *Session) characterize(ctx context.Context, p *bio.Program, sz bio.Size) (*Profile, error) {
	var fp string
	if s.store != nil {
		fp = Fingerprint(p, false, compiler.Default())
		if prof, err, done := s.storeCharacterize(ctx, p, sz, fp); done {
			return prof, err
		}
	}
	prog, err := s.Compile(p, false, compiler.Default())
	if err != nil {
		return nil, err
	}
	m, err := sim.New(prog)
	if err != nil {
		return nil, err
	}
	if err := p.Bind(m, sz); err != nil {
		return nil, fmt.Errorf("%s: bind: %w", p.Name, err)
	}
	a := loadchar.New(prog)
	m.AddObserver(a)
	rec := s.startRecording(m, p, sz, fp, prog)
	s.runs.Add(1)
	s.coldChars.Add(1)
	res, err := m.RunContext(ctx)
	if err != nil {
		rec.abort()
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	if err := p.Validate(res, sz); err != nil {
		rec.abort()
		return nil, err
	}
	// The trace is committed only for a validated, complete run, and
	// only when the writer saw exactly the committed-instruction count.
	rec.commit(res.Instructions)
	prof := &Profile{Name: p.Name, Instructions: res.Instructions, Analysis: a, Source: "cold"}
	if s.store != nil {
		s.storeProfile(prof, sz, fp)
	}
	return prof, nil
}

// CharacterizeAll characterizes the nine BioPerf programs on the
// worker pool, in the paper's Table 1 order.
func (s *Session) CharacterizeAll(ctx context.Context, sz bio.Size) ([]*Profile, error) {
	progs := bio.All()
	out := make([]*Profile, len(progs))
	err := s.ForEach(ctx, len(progs), func(i int) error {
		p, err := s.Characterize(ctx, progs[i], sz)
		out[i] = p
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Evaluate runs one program (original or transformed) on a platform's
// timing model, compiling with that platform's register budget via
// the compile cache, and returns the cycle-level statistics. The
// timing run itself is never cached: each call trains a fresh model.
func (s *Session) Evaluate(ctx context.Context, p *bio.Program, plat platform.Platform, sz bio.Size, transformed bool) (pipeline.Stats, error) {
	return s.EvaluateOpts(ctx, p, plat.Pipeline, plat.EvalOptions(), sz, transformed)
}

// EvaluateOpts is Evaluate with an explicit pipeline configuration
// and compiler options (the ablations sweep both). cfg.Fidelity
// selects the timing tier: the full out-of-order model, or the fast
// scoreboard tier with sampled observation.
func (s *Session) EvaluateOpts(ctx context.Context, p *bio.Program, cfg pipeline.Config, opts compiler.Options, sz bio.Size, transformed bool) (pipeline.Stats, error) {
	sts, err := s.EvaluateGroup(ctx, p, []pipeline.Config{cfg}, opts, sz, transformed)
	if err != nil {
		return pipeline.Stats{}, err
	}
	return sts[0], nil
}

// timingModel is the contract both timing tiers satisfy: slab-batched
// event delivery plus end-of-run statistics.
type timingModel interface {
	sim.BatchObserver
	Stats() pipeline.Stats
}

// EvaluateGroup runs several timing models over ONE functional
// simulation of (program, variant, opts): every config's model is
// attached to the same machine and fed the same committed-instruction
// stream, so a group of k machine configs costs one functional run
// plus k model updates instead of k full simulations. This is what
// makes fast-tier Table 8 and the platform sweeps cheap — platforms
// sharing a register budget share the stream.
//
// Each config routes by its Fidelity. When every config selects the
// fast tier, the machine samples the stream (scoreboard.SampleObserve
// of every SamplePeriod instructions) and each scoreboard extrapolates
// via Finalize; if any config needs the full model, the whole group
// observes the complete stream. Results are returned in cfg order.
func (s *Session) EvaluateGroup(ctx context.Context, p *bio.Program, cfgs []pipeline.Config, opts compiler.Options, sz bio.Size, transformed bool) ([]pipeline.Stats, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	prog, err := s.Compile(p, transformed, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	m, err := sim.New(prog)
	if err != nil {
		return nil, err
	}
	if err := p.Bind(m, sz); err != nil {
		return nil, fmt.Errorf("%s: bind: %w", p.Name, err)
	}
	models := make([]timingModel, len(cfgs))
	allFast := true
	for i, cfg := range cfgs {
		if cfg.Fidelity == pipeline.FidelityFast {
			models[i] = scoreboard.NewModel(cfg)
		} else {
			allFast = false
			models[i] = pipeline.NewModel(cfg)
		}
		m.AddBatchObserver(models[i])
	}
	if allFast {
		m.SetSampling(scoreboard.SampleObserve, scoreboard.SamplePeriod)
	}
	s.runs.Add(1)
	res, err := m.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	if err := p.Validate(res, sz); err != nil {
		return nil, err
	}
	out := make([]pipeline.Stats, len(cfgs))
	for i, md := range models {
		if sb, ok := md.(*scoreboard.Model); ok {
			sb.Finalize(res.Instructions)
		}
		out[i] = md.Stats()
	}
	return out, nil
}

// ForEach invokes fn(i) for every i in [0, n), fanning the calls out
// across the session's worker pool. fn must write its result into a
// caller-owned slot indexed by i, which makes output ordering
// deterministic regardless of goroutine scheduling. When any calls
// fail, the lowest-index error is returned — the same error a
// sequential loop would surface first — so parallel and sequential
// sessions report identically.
//
// Once ctx is canceled no further indices are dispatched; calls
// already in flight finish on their own (fn is expected to observe
// the same ctx). If every dispatched call succeeded but the sweep was
// cut short, ctx.Err() is returned.
func (s *Session) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := s.jobs
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
