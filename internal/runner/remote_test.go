package runner

import (
	"context"
	"sync"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/loadchar"
)

// fakeRemote is a RemoteTier backed by a map, honoring the contract
// that Fetch only returns bytes the verify callback accepted.
type fakeRemote struct {
	mu         sync.Mutex
	artifacts  map[string][]byte
	replicated map[string][]byte
	fetches    int
}

func newFakeRemote() *fakeRemote {
	return &fakeRemote{artifacts: make(map[string][]byte), replicated: make(map[string][]byte)}
}

func (f *fakeRemote) Fetch(ctx context.Context, key string, verify func([]byte) error) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetches++
	data, ok := f.artifacts[key]
	if !ok {
		return nil, false
	}
	if verify != nil && verify(data) != nil {
		return nil, false
	}
	return data, true
}

func (f *fakeRemote) Replicate(key string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replicated[key] = append([]byte(nil), data...)
}

// TestRemoteTierServesPeerSnapshot is the fleet acceptance test at
// unit scale: node A computes cold, node B (sharing nothing but the
// wire bytes) serves the same request from the peer tier with zero
// cold simulations, byte-identical profile, and the artifact admitted
// locally so a THIRD request is a plain snapshot hit.
func TestRemoteTierServesPeerSnapshot(t *testing.T) {
	ctx := context.Background()
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(p, false, compiler.Default())
	key := profKey(fp, bio.SizeTest)

	// Node A: cold compute with a remote attached records the
	// write-through replication push.
	remoteA := newFakeRemote()
	stA := openStore(t, t.TempDir())
	defer stA.Close()
	sA := NewSessionWithStore(1, stA)
	sA.SetRemote(remoteA)
	profA, err := sA.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if st := sA.Stats(); st.ColdChars != 1 || st.PeerHits != 0 {
		t.Fatalf("node A stats %+v", st)
	}
	pushed, ok := remoteA.replicated[key]
	if !ok {
		t.Fatalf("cold compute did not replicate %q; replicated keys: %d", key, len(remoteA.replicated))
	}
	want := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), profA.Analysis, 10)

	// Node B: empty store, remote tier holding A's replicated bytes.
	remoteB := newFakeRemote()
	remoteB.artifacts[key] = pushed
	dirB := t.TempDir()
	stB := openStore(t, dirB)
	sB := NewSessionWithStore(1, stB)
	sB.SetRemote(remoteB)
	profB, err := sB.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if st := sB.Stats(); st.PeerHits != 1 || st.ColdChars != 0 || st.Runs != 0 || st.ReplayRuns != 0 {
		t.Fatalf("node B stats %+v (want exactly one peer hit, no simulation)", st)
	}
	got := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), profB.Analysis, 10)
	if got != want {
		t.Fatalf("peer-served profile differs from locally computed one:\n--- local\n%s\n--- peer\n%s", want, got)
	}

	// Pull-on-read: the fetched artifact was admitted locally, so a
	// fresh session over B's store never consults the remote again.
	if err := stB.Close(); err != nil {
		t.Fatal(err)
	}
	stB2 := openStore(t, dirB)
	defer stB2.Close()
	sB2 := NewSessionWithStore(1, stB2)
	profB2, err := sB2.Characterize(ctx, p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if st := sB2.Stats(); st.ProfileHits != 1 || st.PeerHits != 0 {
		t.Fatalf("node B restart stats %+v (want local snapshot hit)", st)
	}
	if got := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), profB2.Analysis, 10); got != want {
		t.Fatal("admitted artifact renders differently after restart")
	}
}

// TestRemoteTierRejectsBadArtifacts: corrupt or mismatched peer bytes
// must fail verification and push the request to cold simulation,
// never into the local store.
func TestRemoteTierRejectsBadArtifacts(t *testing.T) {
	ctx := context.Background()
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	other, err := bio.ByName("fasta")
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(p, false, compiler.Default())
	key := profKey(fp, bio.SizeTest)

	// A valid snapshot for the WRONG program (fasta), plus garbage.
	stSeed := openStore(t, t.TempDir())
	sSeed := NewSessionWithStore(1, stSeed)
	if _, err := sSeed.Characterize(ctx, other, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	otherKey := profKey(Fingerprint(other, false, compiler.Default()), bio.SizeTest)
	wrongProgram, ok := stSeed.GetBytes(otherKey)
	if !ok {
		t.Fatal("seed store missing fasta snapshot")
	}
	stSeed.Close()

	for name, bad := range map[string][]byte{
		"garbage bytes":  []byte("not a gob artifact at all"),
		"wrong program":  wrongProgram,
		"truncated gob":  wrongProgram[:len(wrongProgram)/3],
		"empty artifact": {},
	} {
		t.Run(name, func(t *testing.T) {
			remote := newFakeRemote()
			remote.artifacts[key] = bad
			st := openStore(t, t.TempDir())
			defer st.Close()
			s := NewSessionWithStore(1, st)
			s.SetRemote(remote)
			prof, err := s.Characterize(ctx, p, bio.SizeTest)
			if err != nil {
				t.Fatal(err)
			}
			if prof == nil || prof.Instructions == 0 {
				t.Fatal("characterization did not complete")
			}
			stats := s.Stats()
			if stats.PeerHits != 0 {
				t.Fatalf("bad artifact counted as peer hit: %+v", stats)
			}
			if stats.ColdChars != 1 {
				t.Fatalf("expected cold fallback, stats %+v", stats)
			}
			if remote.fetches == 0 {
				t.Fatal("remote tier was never consulted")
			}
		})
	}
}
