package runner

import (
	"context"
	"runtime"

	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/trace"
)

// ReplayAnalyze characterizes prog from a chunk-indexed trace through
// the block-characterized replay engine: the trace's column streams
// (PC runs, taken bits, addresses) feed loadchar.AnalyzeRuns, which
// memoizes the order-insensitive passes over (state, run) pairs and
// shards the predictor and cache lanes when workers are available. The
// profile is byte-identical to a live characterization (pinned by
// golden tests).
//
// jobs is a request, not a promise: the worker count is clamped to
// GOMAXPROCS (lanes beyond schedulable CPUs only add handoff cost) and
// collapses to the fused single-lane loop on single-chunk traces. The
// returned Analysis' Exec field records the requested count, the count
// actually used, and the clamp reason, so callers — and the /metrics
// surface — can tell "ran parallel" from "parallel requested, ran
// serial" instead of inferring it from identical results.
func ReplayAnalyze(ctx context.Context, prog *isa.Program, ir *trace.IndexedReader, jobs int) (*loadchar.Analysis, error) {
	n := ir.Chunks()
	effective := jobs
	if effective < 1 {
		effective = 1
	}
	reason := ""
	if g := runtime.GOMAXPROCS(0); effective > g {
		effective, reason = g, loadchar.SerialReasonGOMAXPROCS
	}
	if n < 2 && effective > 1 {
		effective, reason = 1, loadchar.SerialReasonSingleChunk
	}

	// Decode workers are the column source's own pipeline (striped chunk
	// ranges); they scale with the same clamp as the analysis lanes.
	src := ir.Columns(ctx, prog, 0, n, effective)
	defer src.Close()
	a, err := loadchar.AnalyzeRuns(ctx, prog, src, effective)
	if err != nil {
		return nil, err
	}
	a.Exec.RequestedWorkers = jobs
	if reason != "" {
		a.Exec.SerialReason = reason
	}
	return a, nil
}
