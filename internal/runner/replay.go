package runner

import (
	"context"

	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/sim"
	"bioperfload/internal/trace"
)

// ReplayAnalyze characterizes prog from a chunk-indexed trace using up
// to jobs shard workers. The chunk index is split into even,
// contiguous ranges: each shard worker decodes its range independently
// and runs the mergeable passes, while one in-order decode stream
// keeps the sequential cache/predictor/dependence lanes fed (see
// loadchar.AnalyzeSharded). With jobs <= 1 — or a trace too small to
// split — everything collapses into a single fused sequential loop,
// which is the fastest shape on a single-core host.
func ReplayAnalyze(ctx context.Context, prog *isa.Program, ir *trace.IndexedReader, jobs int) (*loadchar.Analysis, error) {
	n := ir.Chunks()
	inorder := ir.Range(prog, 0, n)
	defer inorder.Close()
	shardCount := jobs
	if shardCount > n {
		shardCount = n
	}
	if shardCount <= 1 {
		return loadchar.AnalyzeSharded(ctx, prog, inorder, nil)
	}
	shards := make([]loadchar.Shard, shardCount)
	for i := range shards {
		lo := i * n / shardCount
		hi := (i + 1) * n / shardCount
		src := ir.Range(prog, lo, hi)
		defer src.Close()
		shards[i] = loadchar.Shard{Source: src, Start: ir.Base(lo)}
		if i > 0 {
			lo := lo
			shards[i].Warmup = func() ([]sim.Event, error) {
				return ir.Tail(prog, lo, loadchar.WarmupEvents)
			}
		}
	}
	return loadchar.AnalyzeSharded(ctx, prog, inorder, shards)
}
