package runner

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/sim"
	"bioperfload/internal/store"
	"bioperfload/internal/trace"
)

// artifactSchema versions the session's store keying: bump it when the
// meaning of persisted artifacts changes (compiled-program encoding,
// profile semantics), so stale entries read as misses.
//
// v2: profileArtifact carries the fingerprint it was computed under,
// verified on load — required once snapshots can arrive from fleet
// peers rather than only from this node's own simulations.
//
// v3: traces record in the run-native v4 format. The fingerprint also
// hashes trace.FormatVersion, but the schema bump guarantees that
// every pre-v4 artifact — including snapshots, whose encoding did not
// change — re-derives under the new trace pipeline rather than mixing
// tiers across the format boundary.
const artifactSchema = 3

// Fingerprint identifies a compiled artifact and everything replay
// fidelity depends on: the artifact schema, the trace format version,
// the program identity and variant, the compiler configuration, and
// the full MiniC source text. Two sessions with equal fingerprints
// produce interchangeable programs and traces.
func Fingerprint(p *bio.Program, transformed bool, opts compiler.Options) string {
	return FingerprintAt(p, transformed, opts, trace.FormatVersion)
}

// FingerprintAt computes the fingerprint under a specific trace format
// version. Traces embed the fingerprint they were recorded with, so
// verifying an old trace file (cmd/bioperf replay) must hash with the
// file's own version: a v1 trace recorded before a format bump still
// matches its program.
func FingerprintAt(p *bio.Program, transformed bool, opts compiler.Options, traceVersion int) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d trace=%d program=%s transformed=%v opts=%+v\n",
		artifactSchema, traceVersion, p.Name, transformed && p.Transformable, opts)
	io.WriteString(h, p.Source(transformed))
	return hex.EncodeToString(h.Sum(nil))
}

func progKey(fp string) string               { return "prog|" + fp }
func traceKey(fp string, sz bio.Size) string { return "trace|" + fp + "|" + sz.String() }
func profKey(fp string, sz bio.Size) string  { return "prof|" + fp + "|" + sz.String() }

// encodeProgram serializes a compiled program for the store. Only
// exported fields travel; the lazy symbol index is rebuilt on load.
func encodeProgram(prog *isa.Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(prog); err != nil {
		return nil, fmt.Errorf("encode program: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeProgram(data []byte) (*isa.Program, error) {
	var prog isa.Program
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&prog); err != nil {
		return nil, fmt.Errorf("decode program: %w", err)
	}
	return &prog, nil
}

// loadCompiled returns the compiled program persisted under fp, if the
// store holds an intact copy.
func (s *Session) loadCompiled(fp string) *isa.Program {
	if s.store == nil {
		return nil
	}
	data, ok := s.store.GetBytes(progKey(fp))
	if !ok {
		return nil
	}
	prog, err := decodeProgram(data)
	if err != nil {
		s.store.Delete(progKey(fp))
		return nil
	}
	return prog
}

// storeCompiled persists a freshly compiled program. Failures are
// deliberately silent: the store is a cache, not a dependency.
func (s *Session) storeCompiled(fp string, prog *isa.Program) {
	if s.store == nil {
		return
	}
	if data, err := encodeProgram(prog); err == nil {
		s.store.PutBytes(progKey(fp), data)
	}
}

// profileArtifact is the persisted characterization result: the
// analysis snapshot plus the run's committed-instruction count.
// Fingerprint names the compiled artifact the snapshot was derived
// from; loads (local or peer-fetched) reject an artifact whose
// fingerprint disagrees with the requested one, so a snapshot can
// never be served for the wrong program, variant, or source text.
type profileArtifact struct {
	Fingerprint  string
	Instructions uint64
	Snap         *loadchar.Snapshot
}

// decodeProfileArtifact decodes and structurally validates a
// persisted snapshot against the fingerprint it is supposed to
// satisfy. Shared by the local snapshot tier and the peer-fetch
// verification callback.
func decodeProfileArtifact(data []byte, fp string) (*profileArtifact, error) {
	var art profileArtifact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&art); err != nil {
		return nil, fmt.Errorf("decode profile artifact: %w", err)
	}
	if art.Snap == nil {
		return nil, fmt.Errorf("profile artifact missing snapshot")
	}
	if art.Fingerprint != fp {
		return nil, fmt.Errorf("profile artifact fingerprint %.12s != requested %.12s", art.Fingerprint, fp)
	}
	return &art, nil
}

// loadProfile serves a characterization from a persisted analysis
// snapshot, the cheapest warm path: no simulation, no replay, no
// recompilation beyond the memoized program needed for source
// attribution. Damaged entries are evicted and report a miss.
func (s *Session) loadProfile(p *bio.Program, sz bio.Size, fp string) (*Profile, bool) {
	key := profKey(fp, sz)
	data, ok := s.store.GetBytes(key)
	if !ok {
		return nil, false
	}
	art, err := decodeProfileArtifact(data, fp)
	if err != nil {
		s.store.Delete(key)
		return nil, false
	}
	prog := s.loadCompiled(fp)
	if prog == nil {
		var err error
		prog, err = s.Compile(p, false, compiler.Default())
		if err != nil {
			return nil, false
		}
	}
	a, err := loadchar.FromSnapshot(prog, art.Snap)
	if err != nil {
		s.store.Delete(key)
		return nil, false
	}
	return &Profile{Name: p.Name, Instructions: art.Instructions, Analysis: a, Source: "snapshot"}, true
}

// storeProfile persists a characterization result. Like storeCompiled,
// failures are silent: the store is a cache. With a remote tier
// attached, the freshly persisted snapshot is also replicated
// write-through to the fingerprint's successor nodes, so the fleet
// converges on R+1 copies without waiting for pull-on-read.
func (s *Session) storeProfile(prof *Profile, sz bio.Size, fp string) {
	if s.store == nil || prof == nil || prof.Analysis == nil {
		return
	}
	var buf bytes.Buffer
	art := profileArtifact{Fingerprint: fp, Instructions: prof.Instructions, Snap: prof.Analysis.Snapshot()}
	if err := gob.NewEncoder(&buf).Encode(&art); err != nil {
		return
	}
	key := profKey(fp, sz)
	if err := s.store.PutBytes(key, buf.Bytes()); err != nil {
		return
	}
	if s.remote != nil {
		s.remote.Replicate(key, buf.Bytes())
	}
}

// storeCharacterize serves a characterization from the persistent
// store: first from a persisted analysis snapshot, then by replaying
// the recorded trace (re-persisting the snapshot on the way out),
// then — with a fleet attached — from a peer's store. The bool
// reports whether the request was settled here; false means the
// caller must simulate cold.
func (s *Session) storeCharacterize(ctx context.Context, p *bio.Program, sz bio.Size, fp string) (*Profile, error, bool) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err), true
	}
	if prof, ok := s.loadProfile(p, sz, fp); ok {
		s.profileHits.Add(1)
		return prof, nil, true
	}
	prof, err, done := s.replayCharacterize(ctx, p, sz, fp)
	if done && err == nil {
		s.storeProfile(prof, sz, fp)
	}
	if done {
		return prof, err, done
	}
	if prof, ok := s.remoteCharacterize(ctx, p, sz, fp); ok {
		return prof, nil, true
	}
	return nil, nil, false
}

// remoteCharacterize is the peer tier: ask the fleet for the
// snapshot, verify it (transfer checksums in the cluster client,
// fingerprint and structure here), admit it to the local store
// (pull-on-read: the next identical request on this node is a plain
// snapshot hit), and serve it. ok=false sends the caller to cold
// simulation.
func (s *Session) remoteCharacterize(ctx context.Context, p *bio.Program, sz bio.Size, fp string) (*Profile, bool) {
	if s.remote == nil || ctx.Err() != nil {
		return nil, false
	}
	key := profKey(fp, sz)
	data, ok := s.remote.Fetch(ctx, key, func(b []byte) error {
		_, err := decodeProfileArtifact(b, fp)
		return err
	})
	if !ok {
		return nil, false
	}
	// Admission happens only after verification; PutBytes recomputes
	// the store's own hash and CRC from the verified bytes.
	if err := s.store.PutBytes(key, data); err != nil {
		return nil, false
	}
	prof, ok := s.loadProfile(p, sz, fp)
	if !ok {
		return nil, false
	}
	s.peerHits.Add(1)
	prof.Source = "peer"
	return prof, true
}

// replayCharacterize serves a characterization from a stored trace.
// The bool reports whether the request was settled here: false means
// no usable trace (miss or corruption — corrupt entries are evicted)
// and the caller should simulate cold. Context errors settle the
// request with the error so cancellation is never misread as
// corruption.
func (s *Session) replayCharacterize(ctx context.Context, p *bio.Program, sz bio.Size, fp string) (*Profile, error, bool) {
	key := traceKey(fp, sz)
	rc, size, ok := s.store.OpenReader(key)
	if !ok {
		return nil, nil, false
	}
	defer rc.Close()

	evict := func() (*Profile, error, bool) {
		s.store.Delete(key)
		return nil, nil, false
	}

	// Warm tier: the store hands back the object file, so a v2 trace's
	// footer index is reachable through io.ReaderAt and replay can run
	// sharded (ReplayAnalyze sizes workers from the session's jobs,
	// which default to GOMAXPROCS). Anything unindexable — a legacy
	// reader, a v1 trace — streams sequentially below; ReadAt leaves
	// the reader's offset untouched, so the fallback starts clean.
	if ra, isRA := rc.(io.ReaderAt); isRA {
		if ir, ierr := trace.NewIndexedReader(ra, size); ierr == nil {
			if m := ir.Meta(); m.Program != p.Name || m.Fingerprint != fp {
				return evict()
			}
			prog, err := s.replayProgram(p, fp)
			if err != nil {
				return nil, err, true
			}
			s.countReplay(ir.Version())
			a, err := ReplayAnalyze(ctx, prog, ir, s.jobs)
			if err != nil {
				if isContextErr(err) || ctx.Err() != nil {
					return nil, fmt.Errorf("%s: %w", p.Name, err), true
				}
				return evict() // damaged trace: fall back to cold simulation
			}
			if s.jobs > 1 && !a.Exec.Parallel() {
				s.replaySerial.Add(1)
			}
			return &Profile{Name: p.Name, Instructions: ir.TotalEvents(), Analysis: a, Source: "replay"}, nil, true
		}
	}

	tr, err := trace.NewReader(rc)
	if err != nil {
		return evict()
	}
	if m := tr.Meta(); m.Program != p.Name || m.Fingerprint != fp {
		return evict()
	}
	prog, err := s.replayProgram(p, fp)
	if err != nil {
		return nil, err, true
	}

	s.countReplay(tr.Version())
	var a *loadchar.Analysis
	if s.jobs > 1 {
		src := tr.ParallelEvents(prog, s.jobs)
		a, err = loadchar.AnalyzeParallel(ctx, prog, src)
		src.Close()
	} else {
		a = loadchar.New(prog)
		_, err = tr.Replay(ctx, prog, a)
	}
	if err != nil {
		if isContextErr(err) || ctx.Err() != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err), true
		}
		return evict() // damaged trace: fall back to cold simulation
	}
	// A trace without a seekable chunk index cannot feed the sharded
	// replay engine; record the serial collapse instead of hiding it.
	a.Exec = loadchar.Execution{RequestedWorkers: s.jobs, Workers: 1, SerialReason: loadchar.SerialReasonNoIndex}
	if s.jobs > 1 {
		s.replaySerial.Add(1)
	}
	return &Profile{Name: p.Name, Instructions: tr.TotalEvents(), Analysis: a, Source: "replay"}, nil, true
}

// replayProgram returns the compiled program a trace rebinds to:
// persisted binary first, memoized compile otherwise. The lazy symbol
// index is forced before goroutines share the program.
func (s *Session) replayProgram(p *bio.Program, fp string) (*isa.Program, error) {
	prog := s.loadCompiled(fp)
	if prog == nil {
		var err error
		prog, err = s.Compile(p, false, compiler.Default())
		if err != nil {
			return nil, err
		}
	}
	prog.Symbol("")
	return prog, nil
}

// recorder wires a trace writer into a machine when a store is
// attached. commit finalizes the artifact only for a validated run of
// the expected length; abort discards it.
type recorder struct {
	ew *store.EntryWriter
	tw *trace.Writer
}

func (s *Session) startRecording(m *sim.Machine, p *bio.Program, sz bio.Size, fp string, prog *isa.Program) *recorder {
	if s.store == nil {
		return nil
	}
	ew, err := s.store.Create(traceKey(fp, sz))
	if err != nil {
		return nil
	}
	tw := trace.NewWriter(ew, trace.Meta{
		Program:     p.Name,
		Fingerprint: fp,
		Size:        sz.String(),
	}, prog)
	m.AddBatchObserver(tw)
	return &recorder{ew: ew, tw: tw}
}

func (r *recorder) abort() {
	if r == nil {
		return
	}
	r.ew.Abort()
}

func (r *recorder) commit(instructions uint64) {
	if r == nil {
		return
	}
	if err := r.tw.Close(); err != nil || r.tw.Events() != instructions {
		r.ew.Abort()
		return
	}
	r.ew.Commit()
}
