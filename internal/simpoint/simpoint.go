// Package simpoint is the sampled-characterization subsystem: a
// SimPoint-style phase analysis that makes 100x-scale inputs
// affordable to characterize. The committed instruction stream is cut
// into fixed-size intervals; each interval is summarized by a
// basic-block vector (how many instructions executed in each static
// basic block, the classic phase signature); the vectors are
// random-projected to a few dimensions and clustered with k-means
// (deterministic seeding, BIC-style selection of k); and one
// representative interval per cluster is characterized exactly, its
// counts scaled by the cluster population and merged into a full-run
// profile (loadchar.Snapshot arithmetic). The result is a profile
// whose cost is proportional to k intervals plus one cheap decode
// scan, instead of the full run — with the sampled-vs-exact error
// measured at classB, where ground truth is cheap, and recorded in
// BENCH_sampling.json.
package simpoint

import "fmt"

// Defaults for Config. The interval size is a multiple of the trace
// chunk size (16Ki events), so interval edges coincide with chunk
// edges and representative replay never decodes partial chunks.
const (
	DefaultIntervalSize = 1 << 18   // events per interval (256Ki)
	DefaultDims         = 16        // random-projection dimensions
	DefaultMaxK         = 16        // k-means upper bound before clamping
	DefaultSeed         = 0x51A9017 // deterministic projection + seeding
	DefaultMinIntervals = 4         // fewer intervals degrade to exact
	DefaultBICFraction  = 0.9       // smallest k within this fraction of the best BIC
	DefaultWarmup       = 1 << 16   // warm-up events replayed before each representative
)

// Config parameterizes the sampling pipeline. The zero value selects
// every default; tests shrink IntervalSize to exercise clustering on
// tiny traces.
type Config struct {
	// IntervalSize is the number of committed instructions per
	// interval.
	IntervalSize uint64
	// Dims is the dimensionality BBVs are randomly projected down to
	// before clustering.
	Dims int
	// MaxK bounds the k-means search; it is clamped to the number of
	// intervals.
	MaxK int
	// Seed drives the deterministic random projection and the k-means++
	// seeding. Identical configs produce identical plans.
	Seed uint64
	// MinIntervals is the fewest intervals worth sampling; traces
	// shorter than this degrade to exact characterization.
	MinIntervals int
	// BICFraction selects k: the smallest k whose BIC score is within
	// this fraction of the best score across 1..MaxK.
	BICFraction float64
	// WarmupEvents is how many events are replayed (and subtracted
	// back out) before each representative interval to warm the cache
	// and predictor state.
	WarmupEvents uint64
}

// WithDefaults returns c with every zero field replaced by its
// default.
func (c Config) WithDefaults() Config {
	if c.IntervalSize == 0 {
		c.IntervalSize = DefaultIntervalSize
	}
	if c.Dims <= 0 {
		c.Dims = DefaultDims
	}
	if c.MaxK <= 0 {
		c.MaxK = DefaultMaxK
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.MinIntervals <= 0 {
		c.MinIntervals = DefaultMinIntervals
	}
	if c.BICFraction <= 0 || c.BICFraction > 1 {
		c.BICFraction = DefaultBICFraction
	}
	if c.WarmupEvents == 0 {
		c.WarmupEvents = DefaultWarmup
	}
	return c
}

// Fingerprint names everything a sampled profile depends on beyond
// the program fingerprint: a stored sampled snapshot keyed under it is
// only served back to requests with an identical sampling
// configuration.
func (c Config) Fingerprint() string {
	c = c.WithDefaults()
	return fmt.Sprintf("simpoint|iv=%d|dims=%d|maxk=%d|seed=%x|min=%d|bic=%g|warm=%d",
		c.IntervalSize, c.Dims, c.MaxK, c.Seed, c.MinIntervals, c.BICFraction, c.WarmupEvents)
}

// DegradeError reports that sampling is not applicable to this trace
// or program and the caller should serve the exact characterization
// instead. It is a routing signal, never a failure: every degrade
// carries a human-readable reason that the runner logs.
type DegradeError struct {
	Reason string
}

func (e *DegradeError) Error() string {
	return "simpoint: degrading to exact characterization: " + e.Reason
}
