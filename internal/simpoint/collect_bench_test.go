package simpoint

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
	"bioperfload/internal/trace"
)

// benchTrace records a synthetic commit stream with dnapenny-like
// branch density (a control transfer every ~6 events) so the scan
// benchmark exercises short straight-line runs, the worst case for
// per-run overhead.
func benchTrace(b *testing.B, n int) (*trace.IndexedReader, *isa.Program) {
	b.Helper()
	prog := branchyProgram(1 << 10)
	r := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf, trace.Meta{Program: prog.Name, Size: "bench"}, nil)
	evs := make([]sim.Event, 4096)
	pc := int32(0)
	for seq := 0; seq < n; {
		batch := evs[:0]
		for len(batch) < cap(batch) && seq < n {
			if r.Intn(6) == 0 {
				pc = int32(r.Intn(len(prog.Insts)))
			} else if int(pc)+1 >= len(prog.Insts) {
				pc = 0
			}
			batch = append(batch, sim.Event{Seq: uint64(seq), PC: pc, Inst: &prog.Insts[pc], Target: pc + 1})
			pc++
			seq++
		}
		tw.ObserveBatch(batch)
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	ir, err := trace.NewIndexedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	return ir, prog
}

func BenchmarkCollectTrace(b *testing.B) {
	const n = 1 << 22
	ir, prog := benchTrace(b, n)
	cfg := Config{IntervalSize: 1 << 18}
	ctx := context.Background()
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectTrace(ctx, prog, ir, cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}
