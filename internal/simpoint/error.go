package simpoint

import (
	"math"

	"bioperfload/internal/loadchar"
)

// ProfileError compares a sampled profile against the exact one over
// the headline metrics of every report table, each expressed in
// percentage points so one tolerance scale covers them all. It returns
// the per-metric absolute differences and their maximum — the number
// checked against the per-program tolerance file.
func ProfileError(exact, sampled *loadchar.Analysis) (map[string]float64, float64) {
	em, sm := exact.Mix(), sampled.Mix()
	ec, sc := exact.CacheReport(), sampled.CacheReport()
	es, ss := exact.Sequences(), sampled.Sequences()
	diffs := map[string]float64{
		"mix.load_pct":               math.Abs(em.LoadPct - sm.LoadPct),
		"mix.store_pct":              math.Abs(em.StorePct - sm.StorePct),
		"mix.branch_pct":             math.Abs(em.BranchPct - sm.BranchPct),
		"mix.fp_pct":                 100 * math.Abs(em.FPFraction-sm.FPFraction),
		"coverage.top80":             100 * math.Abs(exact.CoverageAt(80)-sampled.CoverageAt(80)),
		"cache.l1_local":             100 * math.Abs(ec.L1Local-sc.L1Local),
		"cache.overall":              100 * math.Abs(ec.Overall-sc.Overall),
		"bpred.overall_mispredict":   100 * math.Abs(es.OverallMispredictRate-ss.OverallMispredictRate),
		"seq.load_to_branch":         math.Abs(es.LoadToBranchPct - ss.LoadToBranchPct),
		"seq.fed_branch_mispredict":  100 * math.Abs(es.FedBranchMispredictRate-ss.FedBranchMispredictRate),
		"seq.load_after_hard_branch": math.Abs(es.LoadAfterHardBranchPct - ss.LoadAfterHardBranchPct),
	}
	var max float64
	for _, d := range diffs {
		if d > max {
			max = d
		}
	}
	return diffs, max
}
