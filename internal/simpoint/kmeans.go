package simpoint

import "math"

// rng is a splitmix64 stream: deterministic, seedable, and cheap. The
// clustering must be reproducible across runs and machines, so it
// never touches math/rand global state.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

const lloydMaxIters = 64

// kmeans clusters vecs into k groups: k-means++ seeding from the given
// seed, then Lloyd iterations until assignments stabilize (or the
// iteration cap). Empty clusters are reseeded to the point farthest
// from its current centroid, so every returned cluster is non-empty
// whenever k <= len(vecs).
func kmeans(vecs [][]float64, k int, seed uint64) (assign []int, cents [][]float64, sse float64) {
	n := len(vecs)
	d := len(vecs[0])
	r := newRNG(seed)

	// k-means++ seeding: first centroid uniform, the rest D²-weighted.
	cents = make([][]float64, 1, k)
	cents[0] = append([]float64(nil), vecs[r.intn(n)]...)
	minD2 := make([]float64, n)
	for i := range vecs {
		minD2[i] = dist2(vecs[i], cents[0])
	}
	for len(cents) < k {
		var total float64
		for _, v := range minD2 {
			total += v
		}
		idx := n - 1
		if total <= 0 {
			// All points coincide with a centroid; any choice works.
			idx = r.intn(n)
		} else {
			target := r.float64() * total
			var acc float64
			for i, v := range minD2 {
				acc += v
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := append([]float64(nil), vecs[idx]...)
		cents = append(cents, c)
		for i := range vecs {
			if v := dist2(vecs[i], c); v < minD2[i] {
				minD2[i] = v
			}
		}
	}

	assign = make([]int, n)
	assignStep := func() bool {
		changed := false
		for i, v := range vecs {
			best, bd := 0, dist2(v, cents[0])
			for j := 1; j < k; j++ {
				if dj := dist2(v, cents[j]); dj < bd {
					best, bd = j, dj
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		return changed
	}

	assignStep()
	for iter := 0; iter < lloydMaxIters; iter++ {
		// Update step: recompute centroids as member means.
		counts := make([]int, k)
		next := make([][]float64, k)
		for j := range next {
			next[j] = make([]float64, d)
		}
		for i, v := range vecs {
			j := assign[i]
			counts[j]++
			for di := range v {
				next[j][di] += v[di]
			}
		}
		reseeded := false
		for j := range next {
			if counts[j] == 0 {
				// Reseed an empty cluster to the point farthest from its
				// current centroid; it captures that point next pass.
				far, fd := 0, -1.0
				for i, v := range vecs {
					if dv := dist2(v, cents[assign[i]]); dv > fd {
						far, fd = i, dv
					}
				}
				copy(next[j], vecs[far])
				reseeded = true
				continue
			}
			inv := 1 / float64(counts[j])
			for di := range next[j] {
				next[j][di] *= inv
			}
		}
		cents = next
		if !assignStep() && !reseeded {
			break
		}
	}

	for i, v := range vecs {
		sse += dist2(v, cents[assign[i]])
	}
	return assign, cents, sse
}

// bicScore is the X-means BIC approximation for a spherical-Gaussian
// mixture fit: log-likelihood of the clustering minus a complexity
// penalty of half the free parameter count times log n. Higher is
// better.
func bicScore(n, d, k int, sse float64, assign []int) float64 {
	counts := make([]int, k)
	for _, j := range assign {
		counts[j]++
	}
	variance := 0.0
	if n > k {
		variance = sse / float64(d*(n-k))
	}
	if variance < 1e-12 {
		// A perfect fit (k == n, or genuinely identical vectors) would
		// send log(σ²) to -inf; clamping keeps scores finite and still
		// strongly favors the tight clustering.
		variance = 1e-12
	}
	nn := float64(n)
	ll := 0.0
	for _, ni := range counts {
		if ni > 0 {
			ll += float64(ni) * math.Log(float64(ni))
		}
	}
	ll -= nn * math.Log(nn)
	ll -= nn * float64(d) / 2 * math.Log(2*math.Pi*variance)
	ll -= float64(d) * float64(n-k) / 2
	params := float64(k * (d + 1))
	return ll - params/2*math.Log(nn)
}

// cluster runs kmeans for every k in 1..maxK and picks the smallest k
// whose BIC score lands within frac of the best, rescaled to the
// observed score range — the SimPoint heuristic that prefers fewer
// simulation points when the fit is nearly as good.
func cluster(vecs [][]float64, maxK int, seed uint64, frac float64) (k int, assign []int, cents [][]float64) {
	n := len(vecs)
	if maxK > n {
		maxK = n
	}
	type result struct {
		assign []int
		cents  [][]float64
		bic    float64
	}
	results := make([]result, maxK+1)
	minB, maxB := math.Inf(1), math.Inf(-1)
	for kk := 1; kk <= maxK; kk++ {
		a, c, sse := kmeans(vecs, kk, seed+uint64(kk))
		b := bicScore(n, len(vecs[0]), kk, sse, a)
		results[kk] = result{assign: a, cents: c, bic: b}
		minB = math.Min(minB, b)
		maxB = math.Max(maxB, b)
	}
	span := maxB - minB
	for kk := 1; kk <= maxK; kk++ {
		if span <= 0 || results[kk].bic-minB >= frac*span {
			return kk, results[kk].assign, results[kk].cents
		}
	}
	return maxK, results[maxK].assign, results[maxK].cents
}
