package simpoint

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"bioperfload/internal/isa"
	"bioperfload/internal/trace"
)

// CollectTrace scans a recorded trace and returns its interval BBVs.
// Unlike exact replay — whose cache, predictor, and dependence state
// chain every event to the previous one — BBV collection only counts
// block executions, so the scan parallelizes perfectly: each worker
// decodes an interval-aligned run of chunks with a private collector
// and the per-worker interval slices concatenate in order. This is
// where the bulk of the sampled path's speedup comes from.
func CollectTrace(ctx context.Context, prog *isa.Program, ir *trace.IndexedReader, cfg Config, jobs int) ([]Interval, error) {
	cfg = cfg.WithDefaults()
	total := ir.TotalEvents()
	if total == 0 {
		return nil, nil
	}
	iv := cfg.IntervalSize
	m := int((total + iv - 1) / iv)
	if jobs > m {
		jobs = m
	}
	if jobs < 1 {
		jobs = 1
	}

	blocks := BlockMap(prog)
	type result struct {
		ivs []Interval
		err error
	}
	results := make([]result, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		// Even split of interval indices; the last worker takes the
		// partial tail.
		ivLo := m * w / jobs
		ivHi := m * (w + 1) / jobs
		start := uint64(ivLo) * iv
		end := uint64(ivHi) * iv
		if end > total {
			end = total
		}
		wg.Add(1)
		go func(w int, start, end uint64) {
			defer wg.Done()
			results[w].ivs, results[w].err = scanRange(ctx, prog, blocks, ir, cfg, start, end)
		}(w, start, end)
	}
	wg.Wait()

	var out []Interval
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.ivs...)
	}
	if len(out) != m {
		return nil, fmt.Errorf("simpoint: collected %d intervals, expected %d", len(out), m)
	}
	return out, nil
}

// scanRange scans the chunks covering [start, end) as PC runs and
// collects its intervals. start must lie on an interval edge; end is
// either an edge or the stream end. The PC-run scan decodes only the
// program-counter column — no event slabs, no target or address
// varints — and the collector attributes whole runs to blocks, so the
// per-event cost of BBV collection drops to a few block lookups per
// thousand instructions.
func scanRange(ctx context.Context, prog *isa.Program, blocks *Blocks, ir *trace.IndexedReader, cfg Config, start, end uint64) ([]Interval, error) {
	n := ir.Chunks()
	// Greatest chunk starting at or before start, then the first chunk
	// starting at or past end; together they cover [start, end).
	lo := sort.Search(n, func(i int) bool { return ir.Base(i) > start }) - 1
	if lo < 0 {
		lo = 0
	}
	hi := sort.Search(n, func(i int) bool { return ir.Base(i) >= end })

	col := NewCollectorAt(prog, blocks, cfg, start)
	// Chunk lo may begin before start and chunk hi-1 may extend past
	// end (interval edges need not align with chunk edges), so clip the
	// token stream: skip events before start, stop counting at end.
	// Tokens from v4 traces carry whole repeat counts, so the clipping
	// drops or truncates whole repetitions where it can and splits at
	// most one repetition at each edge.
	skip := start - ir.Base(lo)
	limit := end - start
	err := ir.ScanRunTokens(ctx, prog, lo, hi, func(pc, n int32, rep int64) {
		span := uint64(n)
		if skip > 0 {
			if drop := int64(skip / span); drop >= rep {
				skip -= span * uint64(rep)
				return
			} else if drop > 0 {
				rep -= drop
				skip -= uint64(drop) * span
			}
			if skip > 0 {
				// Leading repetition split by the range start.
				head, hn := pc+int32(skip), n-int32(skip)
				skip = 0
				rep--
				take := uint64(hn)
				if take > limit {
					take = limit
				}
				if take > 0 {
					col.ObserveRun(head, int32(take))
					limit -= take
				}
			}
		}
		if limit == 0 || rep == 0 {
			return
		}
		if whole := int64(limit / span); whole < rep {
			if whole > 0 {
				col.ObserveRunRepeat(pc, n, whole)
				limit -= uint64(whole) * span
			}
			if limit > 0 {
				// Trailing repetition split by the range end.
				col.ObserveRun(pc, int32(limit))
				limit = 0
			}
			return
		}
		col.ObserveRunRepeat(pc, n, rep)
		limit -= uint64(rep) * span
	})
	if err != nil {
		return nil, err
	}
	if limit != 0 {
		return nil, fmt.Errorf("simpoint: scan [%d,%d) ended %d events short", start, end, limit)
	}
	return col.Finish(), nil
}
