package simpoint

import (
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// Interval is one fixed-size slice of the committed stream with its
// phase signature: the basic-block vector, L1-normalized and randomly
// projected down to Config.Dims dimensions.
type Interval struct {
	Index int
	Start uint64 // sequence number of the first event
	End   uint64 // one past the last event
	Vec   []float64
}

// Events returns the interval's event count.
func (iv Interval) Events() uint64 { return iv.End - iv.Start }

// Collector accumulates basic-block vectors per interval. It is a
// sim.BatchObserver, so the same collector rides a live Machine
// (AddBatchObserver) or a trace decode loop; interval edges are cut by
// a sim.IntervalSplitter so slabs never straddle a boundary. A
// collector observes one contiguous sequence range; parallel scans
// give each worker its own collector over an interval-aligned range
// and concatenate the results.
type Collector struct {
	cfg     Config
	blocks  *Blocks
	split   *sim.IntervalSplitter
	counts  []uint64
	touched []int32
	start   uint64 // start seq of the interval being filled
	end     uint64 // one past the last event observed
	out     []Interval
	runNext uint64 // run mode: seq of the next interval edge
	runMode bool   // fed by ObserveRun rather than the splitter
}

// NewCollector creates a collector over prog starting at sequence 0.
func NewCollector(prog *isa.Program, cfg Config) *Collector {
	return NewCollectorAt(prog, BlockMap(prog), cfg, 0)
}

// NewCollectorAt creates a collector whose first event has sequence
// number start, which must lie on an interval edge. The block map is
// shared read-only, so parallel workers reuse one.
func NewCollectorAt(prog *isa.Program, blocks *Blocks, cfg Config, start uint64) *Collector {
	cfg = cfg.WithDefaults()
	c := &Collector{
		cfg:    cfg,
		blocks: blocks,
		counts: make([]uint64, blocks.NumBlocks()),
		start:  start,
		end:    start,
	}
	c.split = sim.NewIntervalSplitter(cfg.IntervalSize, start,
		sim.BatchObserverFunc(c.observe), c.boundary)
	c.runNext = start + cfg.IntervalSize
	return c
}

// ObserveBatch implements sim.BatchObserver.
func (c *Collector) ObserveBatch(evs []sim.Event) { c.split.ObserveBatch(evs) }

// ObserveRun counts a straight-line run: n events whose PCs are pc,
// pc+1, ..., pc+n-1, the form trace.IndexedReader.ScanPCRuns emits.
// Attribution happens per block crossed rather than per event, and the
// collector cuts interval edges itself, so runs may straddle them.
// A collector is fed either runs or batches, never both.
func (c *Collector) ObserveRun(pc, n int32) {
	c.runMode = true
	for n > 0 {
		take := n
		if room := c.runNext - c.end; uint64(take) > room {
			take = int32(room)
		}
		c.countRun(pc, take)
		c.end += uint64(take)
		pc += take
		n -= take
		if c.end == c.runNext {
			c.boundary(int(c.start/c.cfg.IntervalSize), c.end)
			c.runNext += c.cfg.IntervalSize
		}
	}
}

// ObserveRunRepeat counts rep back-to-back executions of the run
// (pc, n), the form trace.IndexedReader.ScanRunTokens emits for v4
// traces. Repetitions that fit entirely inside the current interval
// are counted in bulk — one block walk scaled by the repeat count —
// so a loop that spins millions of times inside one interval costs
// one pass over its blocks, not one per iteration.
func (c *Collector) ObserveRunRepeat(pc, n int32, rep int64) {
	c.runMode = true
	for rep > 0 {
		room := c.runNext - c.end
		if whole := int64(room / uint64(n)); whole > 1 {
			if whole > rep {
				whole = rep
			}
			c.countRunScaled(pc, n, uint64(whole))
			c.end += uint64(whole) * uint64(n)
			rep -= whole
			if c.end == c.runNext {
				c.boundary(int(c.start/c.cfg.IntervalSize), c.end)
				c.runNext += c.cfg.IntervalSize
			}
			continue
		}
		// The next repetition straddles (or exactly fills) the interval
		// edge: take the split path.
		c.ObserveRun(pc, n)
		rep--
	}
}

// countRun splits a straight-line run at block boundaries: one lookup
// and one add per block executed, however long the block is.
func (c *Collector) countRun(pc, n int32) { c.countRunScaled(pc, n, 1) }

// countRunScaled is countRun with every block's contribution
// multiplied by times.
func (c *Collector) countRunScaled(pc, n int32, times uint64) {
	for n > 0 {
		b := c.blocks.Of(pc)
		take := c.blocks.NextLeader(pc) - pc
		if take > n {
			take = n
		}
		if c.counts[b] == 0 {
			c.touched = append(c.touched, b)
		}
		c.counts[b] += uint64(take) * times
		pc += take
		n -= take
	}
}

// Finish closes the trailing partial interval, if any, and returns
// every interval observed, in order.
func (c *Collector) Finish() []Interval {
	if c.runMode {
		if c.end > c.start {
			c.boundary(int(c.start/c.cfg.IntervalSize), c.end)
		}
		return c.out
	}
	c.split.Flush(c.end)
	return c.out
}

func (c *Collector) observe(evs []sim.Event) {
	for i := range evs {
		b := c.blocks.Of(evs[i].PC)
		if c.counts[b] == 0 {
			c.touched = append(c.touched, b)
		}
		c.counts[b]++
	}
	if len(evs) > 0 {
		c.end = evs[len(evs)-1].Seq + 1
	}
}

func (c *Collector) boundary(index int, end uint64) {
	iv := Interval{Index: index, Start: c.start, End: end, Vec: c.project(end - c.start)}
	c.out = append(c.out, iv)
	c.start = end
	for _, b := range c.touched {
		c.counts[b] = 0
	}
	c.touched = c.touched[:0]
}

// project folds the current block counts into a Dims-dimensional
// vector: each block contributes its execution frequency (count over
// interval length — the L1 normalization that makes a short tail
// interval comparable to full ones) times a deterministic ±1 sign per
// dimension. This is the classic sparse random projection; distances
// between projected vectors approximate BBV distances well enough for
// clustering at a tiny fraction of the dimensionality.
func (c *Collector) project(events uint64) []float64 {
	vec := make([]float64, c.cfg.Dims)
	if events == 0 {
		return vec
	}
	inv := 1 / float64(events)
	for _, b := range c.touched {
		f := float64(c.counts[b]) * inv
		h := mix64(c.cfg.Seed ^ (uint64(b)+1)*0x9E3779B97F4A7C15)
		for d := range vec {
			// One extra mix per dimension keeps the signs independent.
			if mix64(h^uint64(d)*0xC2B2AE3D27D4EB4F)&1 == 1 {
				vec[d] += f
			} else {
				vec[d] -= f
			}
		}
	}
	return vec
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective
// hash used for the deterministic projection signs and the clustering
// RNG.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
