package simpoint

import (
	"bioperfload/internal/basicblock"
	"bioperfload/internal/isa"
)

// Blocks is the static basic-block map; it now lives in
// internal/basicblock so the replay engine (internal/loadchar, which
// this package imports) can share it without an import cycle. The
// alias keeps every existing simpoint call site working.
type Blocks = basicblock.Blocks

// BlockMap computes the basic-block map of prog.
func BlockMap(prog *isa.Program) *Blocks { return basicblock.Map(prog) }
