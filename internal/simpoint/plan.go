package simpoint

import "fmt"

// Cluster is one phase: a group of intervals with similar BBVs, plus
// the single representative interval that is characterized exactly on
// the whole group's behalf.
type Cluster struct {
	// Rep is the representative's interval index.
	Rep int
	// Start, End bound the representative's event range.
	Start, End uint64
	// Weight is the number of member intervals; the representative's
	// counts are scaled by it during extrapolation.
	Weight uint64
	// Members lists every member interval index, in order.
	Members []int
}

// Plan is a complete sampling decision for one trace: the interval
// timeline, the chosen clustering, and the representative set.
type Plan struct {
	Config      Config
	TotalEvents uint64
	Intervals   []Interval
	// K is the chosen cluster count.
	K int
	// Assign maps interval index to its position in Clusters.
	Assign   []int
	Clusters []Cluster
}

// BuildPlan clusters the collected intervals and selects
// representatives. It returns a *DegradeError (never a panic) when the
// trace is too small to sample profitably: the caller falls back to
// exact characterization.
func BuildPlan(intervals []Interval, cfg Config) (*Plan, error) {
	cfg = cfg.WithDefaults()
	n := len(intervals)
	if n == 0 {
		return nil, &DegradeError{Reason: "trace has zero intervals"}
	}
	if n < cfg.MinIntervals {
		return nil, &DegradeError{Reason: fmt.Sprintf(
			"only %d interval(s), below the %d-interval minimum", n, cfg.MinIntervals)}
	}

	vecs := make([][]float64, n)
	for i := range intervals {
		vecs[i] = intervals[i].Vec
	}
	// cluster clamps k to the interval count, so a MaxK larger than the
	// trace can never produce empty clusters by construction.
	_, assign, cents := cluster(vecs, cfg.MaxK, cfg.Seed, cfg.BICFraction)

	p := &Plan{
		Config:      cfg,
		TotalEvents: intervals[n-1].End - intervals[0].Start,
		Intervals:   intervals,
		Assign:      make([]int, n),
	}
	// Group members per raw cluster ID, dropping any ID with no members
	// and renumbering densely.
	members := make(map[int][]int)
	for i, j := range assign {
		members[j] = append(members[j], i)
	}
	seen := make(map[int]int) // raw ID -> dense index
	for i, j := range assign {
		dense, ok := seen[j]
		if !ok {
			dense = len(p.Clusters)
			seen[j] = dense
			p.Clusters = append(p.Clusters, buildCluster(intervals, members[j], cents[j], cfg))
		}
		p.Assign[i] = dense
	}
	p.K = len(p.Clusters)
	return p, nil
}

// buildCluster picks the member nearest the centroid as the
// representative, preferring full-size intervals: a partial tail
// interval has too little context to stand in for full ones, so it
// only ever represents a cluster with no full members (typically
// itself).
func buildCluster(intervals []Interval, members []int, cent []float64, cfg Config) Cluster {
	rep, best := -1, 0.0
	for _, i := range members {
		if intervals[i].Events() != cfg.IntervalSize {
			continue
		}
		if d := dist2(intervals[i].Vec, cent); rep < 0 || d < best {
			rep, best = i, d
		}
	}
	if rep < 0 {
		for _, i := range members {
			if d := dist2(intervals[i].Vec, cent); rep < 0 || d < best {
				rep, best = i, d
			}
		}
	}
	return Cluster{
		Rep:     rep,
		Start:   intervals[rep].Start,
		End:     intervals[rep].End,
		Weight:  uint64(len(members)),
		Members: members,
	}
}
