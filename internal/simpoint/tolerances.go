package simpoint

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"strings"
)

//go:embed tolerances_classB.json
var toleranceJSON []byte

var tolerances = func() map[string]float64 {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(toleranceJSON, &raw); err != nil {
		panic(fmt.Sprintf("simpoint: bad tolerances_classB.json: %v", err))
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if strings.HasPrefix(k, "_") {
			continue
		}
		var f float64
		if err := json.Unmarshal(v, &f); err != nil {
			panic(fmt.Sprintf("simpoint: bad tolerance for %q: %v", k, err))
		}
		out[k] = f
	}
	return out
}()

// ToleranceClassB returns the checked-in maximum acceptable profile
// error (percentage points) for the program's classB sampled run, and
// whether one is recorded. Both the error-bound test and
// `bench-sampling -check-errors` gate on the same numbers.
func ToleranceClassB(program string) (float64, bool) {
	t, ok := tolerances[program]
	return t, ok
}
