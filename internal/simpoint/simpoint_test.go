package simpoint

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
	"bioperfload/internal/trace"
)

// branchyProgram builds a program whose control transfers carve it
// into a handful of blocks: a loop header, two conditional arms, and a
// subroutine.
func branchyProgram(n int) *isa.Program {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i].Op = isa.OpAdd
	}
	insts[n/4] = isa.Inst{Op: isa.OpBeq, Target: int32(n / 2)}
	insts[n/2+n/8] = isa.Inst{Op: isa.OpJsr, Target: int32(3 * n / 4)}
	insts[3*n/4+2] = isa.Inst{Op: isa.OpRet}
	insts[n-1] = isa.Inst{Op: isa.OpBr, Target: 0}
	return &isa.Program{Name: "branchy", Insts: insts}
}

func TestBlockMap(t *testing.T) {
	prog := branchyProgram(64)
	b := BlockMap(prog)
	if b.NumBlocks() < 5 {
		t.Fatalf("expected >= 5 blocks, got %d", b.NumBlocks())
	}
	// Same-block PCs share an ID; a branch target starts a new block.
	if b.Of(0) != b.Of(1) {
		t.Error("pc 0 and 1 should share the entry block")
	}
	if b.Of(31) == b.Of(32) {
		t.Error("branch target (pc 32) should start a new block")
	}
	if b.Of(16) == b.Of(17) {
		t.Error("branch fall-through (pc 17) should start a new block")
	}
	// Every PC resolves to a valid ID.
	for pc := 0; pc < 64; pc++ {
		if id := b.Of(int32(pc)); id < 0 || int(id) >= b.NumBlocks() {
			t.Fatalf("pc %d maps to out-of-range block %d", pc, id)
		}
	}
}

// walkEvents produces a deterministic synthetic commit stream over
// prog: mostly sequential PCs with seeded jumps, exercising several
// blocks.
func walkEvents(prog *isa.Program, n int, seed int64) []sim.Event {
	r := rand.New(rand.NewSource(seed))
	evs := make([]sim.Event, n)
	pc := int32(0)
	for i := range evs {
		if r.Intn(10) == 0 {
			pc = int32(r.Intn(len(prog.Insts)))
		} else if int(pc)+1 >= len(prog.Insts) {
			pc = 0
		}
		evs[i] = sim.Event{Seq: uint64(i), PC: pc, Inst: &prog.Insts[pc], Target: pc + 1}
		pc++
	}
	return evs
}

// TestCollectorMatchesReference compares the collector's projected
// vectors against a direct reimplementation of the per-interval counts
// and projection, delivered in deliberately uneven slabs.
func TestCollectorMatchesReference(t *testing.T) {
	prog := branchyProgram(64)
	blocks := BlockMap(prog)
	cfg := Config{IntervalSize: 128, Dims: 8}.WithDefaults()
	const n = 128*5 + 37 // five full intervals plus a partial tail
	evs := walkEvents(prog, n, 1)

	c := NewCollector(prog, cfg)
	for lo := 0; lo < n; {
		hi := lo + 1 + (lo*7)%200
		if hi > n {
			hi = n
		}
		c.ObserveBatch(evs[lo:hi])
		lo = hi
	}
	got := c.Finish()
	if len(got) != 6 {
		t.Fatalf("got %d intervals, want 6", len(got))
	}

	for i, iv := range got {
		wantStart, wantEnd := uint64(i)*128, uint64(i+1)*128
		if wantEnd > n {
			wantEnd = n
		}
		if iv.Start != wantStart || iv.End != wantEnd || iv.Index != i {
			t.Fatalf("interval %d bounds: got [%d,%d) idx %d", i, iv.Start, iv.End, iv.Index)
		}
		// Reference projection: count blocks directly, same sign hash.
		counts := make(map[int32]uint64)
		for _, ev := range evs[iv.Start:iv.End] {
			counts[blocks.Of(ev.PC)]++
		}
		want := make([]float64, cfg.Dims)
		inv := 1 / float64(iv.End-iv.Start)
		for b, cnt := range counts {
			f := float64(cnt) * inv
			h := mix64(cfg.Seed ^ (uint64(b)+1)*0x9E3779B97F4A7C15)
			for d := range want {
				if mix64(h^uint64(d)*0xC2B2AE3D27D4EB4F)&1 == 1 {
					want[d] += f
				} else {
					want[d] -= f
				}
			}
		}
		for d := range want {
			if diff := iv.Vec[d] - want[d]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("interval %d dim %d: got %g want %g", i, d, iv.Vec[d], want[d])
			}
		}
	}
}

func TestKmeansDeterministicAndSeparating(t *testing.T) {
	// Two well-separated blobs plus a lone outlier.
	var vecs [][]float64
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		vecs = append(vecs, []float64{0 + r.Float64()*0.01, 0 + r.Float64()*0.01})
	}
	for i := 0; i < 20; i++ {
		vecs = append(vecs, []float64{5 + r.Float64()*0.01, 5 + r.Float64()*0.01})
	}
	k1, a1, _ := cluster(vecs, 8, 42, 0.9)
	k2, a2, _ := cluster(vecs, 8, 42, 0.9)
	if k1 != k2 || !reflect.DeepEqual(a1, a2) {
		t.Fatal("clustering is not deterministic for identical inputs")
	}
	if k1 < 2 {
		t.Fatalf("two separated blobs clustered into k=%d", k1)
	}
	// No blob may be split across the other blob's cluster.
	for i := 1; i < 20; i++ {
		if a1[i] != a1[0] {
			t.Fatalf("blob A split: assign[%d]=%d vs %d", i, a1[i], a1[0])
		}
		if a1[20+i] != a1[20] {
			t.Fatalf("blob B split: assign[%d]=%d vs %d", 20+i, a1[20+i], a1[20])
		}
	}
	if a1[0] == a1[20] {
		t.Fatal("both blobs assigned to one cluster")
	}
}

func TestKmeansIdenticalVectors(t *testing.T) {
	// All-identical vectors (the single-block shape) must not panic and
	// must settle on k=1.
	vecs := make([][]float64, 10)
	for i := range vecs {
		vecs[i] = []float64{1, -1, 1}
	}
	k, assign, _ := cluster(vecs, 8, 42, 0.9)
	if k != 1 {
		t.Fatalf("identical vectors clustered into k=%d", k)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatal("identical vectors not all in cluster 0")
		}
	}
}

// mkIntervals builds n synthetic intervals of the given size with the
// supplied vectors; a tail < size makes the last one partial.
func mkIntervals(size uint64, vecs [][]float64, tail uint64) []Interval {
	out := make([]Interval, len(vecs))
	var start uint64
	for i, v := range vecs {
		end := start + size
		if i == len(vecs)-1 && tail > 0 {
			end = start + tail
		}
		out[i] = Interval{Index: i, Start: start, End: end, Vec: v}
		start = end
	}
	return out
}

func TestBuildPlanGuards(t *testing.T) {
	cfg := Config{IntervalSize: 100, MinIntervals: 4}
	cases := []struct {
		name      string
		intervals []Interval
		reason    string
	}{
		{"zero intervals", nil, "zero intervals"},
		{"below minimum", mkIntervals(100, [][]float64{{1}, {1}, {1}}, 0), "below the 4-interval minimum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildPlan(tc.intervals, cfg)
			var de *DegradeError
			if !errors.As(err, &de) {
				t.Fatalf("got %v, want DegradeError", err)
			}
			if !bytes.Contains([]byte(de.Reason), []byte(tc.reason)) {
				t.Fatalf("reason %q does not mention %q", de.Reason, tc.reason)
			}
		})
	}
}

func TestBuildPlanClampsKAndCoversAll(t *testing.T) {
	// 5 intervals, MaxK far larger: k must clamp, every interval must
	// be assigned, and weights must sum to the interval count.
	vecs := [][]float64{{0, 0}, {0, 0.01}, {5, 5}, {5, 5.01}, {9, 9}}
	p, err := BuildPlan(mkIntervals(100, vecs, 0), Config{IntervalSize: 100, MaxK: 64, MinIntervals: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.K > 5 || p.K < 1 {
		t.Fatalf("k=%d outside [1,5]", p.K)
	}
	var weight uint64
	for _, c := range p.Clusters {
		weight += c.Weight
		if len(c.Members) == 0 {
			t.Fatal("empty cluster in plan")
		}
		if c.Rep < 0 || c.Rep >= len(vecs) {
			t.Fatalf("rep %d out of range", c.Rep)
		}
	}
	if weight != 5 {
		t.Fatalf("weights sum to %d, want 5", weight)
	}
	for i, j := range p.Assign {
		found := false
		for _, m := range p.Clusters[j].Members {
			if m == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("interval %d not listed in its cluster's members", i)
		}
	}
}

func TestBuildPlanPrefersFullRepresentative(t *testing.T) {
	// The partial tail sits dead-center of a cluster; a full interval
	// must still represent it.
	vecs := [][]float64{{1, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}}
	p, err := BuildPlan(mkIntervals(100, vecs, 40), Config{IntervalSize: 100, MinIntervals: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Clusters {
		if p.Intervals[c.Rep].Events() != 100 {
			t.Fatalf("partial interval %d chosen as representative of a cluster with full members", c.Rep)
		}
	}
	if p.TotalEvents != 440 {
		t.Fatalf("TotalEvents=%d, want 440", p.TotalEvents)
	}
}

// TestCollectTraceMatchesLive records a synthetic trace, then checks
// the parallel trace scan reproduces the live collector's intervals
// exactly, at several worker counts.
func TestCollectTraceMatchesLive(t *testing.T) {
	prog := branchyProgram(256)
	const n = 16*1024*3 + 511 // three interval-sized runs + partial tail
	evs := walkEvents(prog, n, 2)
	cfg := Config{IntervalSize: 16 * 1024, Dims: 8}

	live := NewCollector(prog, cfg)
	live.ObserveBatch(evs)
	want := live.Finish()

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf, trace.Meta{Program: prog.Name, Size: "test", ChunkEvents: 4096}, nil)
	tw.ObserveBatch(evs)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	ir, err := trace.NewIndexedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}

	for _, jobs := range []int{1, 2, 7} {
		got, err := CollectTrace(context.Background(), prog, ir, cfg, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("jobs=%d: trace scan differs from live collection", jobs)
		}
	}
}

func TestCollectTraceCancellation(t *testing.T) {
	prog := branchyProgram(64)
	evs := walkEvents(prog, 8192, 3)
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf, trace.Meta{Program: prog.Name, Size: "test", ChunkEvents: 1024}, nil)
	tw.ObserveBatch(evs)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	ir, err := trace.NewIndexedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CollectTrace(ctx, prog, ir, Config{IntervalSize: 1024}, 2); err == nil {
		t.Fatal("cancelled collection succeeded")
	}
}

func TestConfigFingerprintCoversEveryKnob(t *testing.T) {
	base := Config{}.WithDefaults()
	mutants := []Config{
		{IntervalSize: base.IntervalSize * 2},
		{Dims: base.Dims + 1},
		{MaxK: base.MaxK + 1},
		{Seed: base.Seed + 1},
		{MinIntervals: base.MinIntervals + 1},
		{BICFraction: 0.5},
		{WarmupEvents: base.WarmupEvents * 2},
	}
	seen := map[string]bool{base.Fingerprint(): true}
	for i, m := range mutants {
		fp := m.WithDefaults().Fingerprint()
		if seen[fp] {
			t.Fatalf("mutant %d collides with a prior fingerprint: %s", i, fp)
		}
		seen[fp] = true
	}
}

func TestToleranceTableComplete(t *testing.T) {
	for _, prog := range []string{"blast", "clustalw", "dnapenny", "fasta",
		"hmmcalibrate", "hmmpfam", "hmmsearch", "predator", "promlk"} {
		if _, ok := ToleranceClassB(prog); !ok {
			t.Errorf("no classB tolerance recorded for %s", prog)
		}
	}
}

// representableWalk is walkEvents with truthful targets and
// class-consistent branch outcomes, so the stream is accepted by the
// v4 run-native writer.
func representableWalk(prog *isa.Program, n int, seed int64) []sim.Event {
	r := rand.New(rand.NewSource(seed))
	evs := make([]sim.Event, n)
	pc := int32(0)
	for i := range evs {
		ev := sim.Event{Seq: uint64(i), PC: pc, Inst: &prog.Insts[pc]}
		next := pc + 1
		if r.Intn(12) == 0 || int(next) >= len(prog.Insts) {
			next = int32(r.Intn(len(prog.Insts)))
		}
		switch isa.ClassOf(prog.Insts[pc].Op) {
		case isa.ClassCondBranch:
			ev.Taken = r.Intn(2) == 0
		case isa.ClassUncondBranch:
			ev.Taken = true
		}
		ev.Target = next
		evs[i] = ev
		pc = next
	}
	return evs
}

// TestCollectTraceV4MatchesV3 pins the run-token BBV path: the same
// representable stream written at v3 (per-run scan) and v4 (dictionary
// tokens with bulk repeats) must collect identical intervals, both
// equal to the live collector's.
func TestCollectTraceV4MatchesV3(t *testing.T) {
	prog := branchyProgram(256)
	const n = 16*1024*3 + 511
	evs := representableWalk(prog, n, 4)
	cfg := Config{IntervalSize: 16 * 1024, Dims: 8}

	live := NewCollector(prog, cfg)
	live.ObserveBatch(evs)
	want := live.Finish()

	for _, version := range []int{3, 4} {
		var buf bytes.Buffer
		tw := trace.NewWriterVersion(&buf, trace.Meta{Program: prog.Name, Size: "test", ChunkEvents: 4096}, prog, version)
		tw.ObserveBatch(evs)
		if err := tw.Close(); err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		ir, err := trace.NewIndexedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		for _, jobs := range []int{1, 3} {
			got, err := CollectTrace(context.Background(), prog, ir, cfg, jobs)
			if err != nil {
				t.Fatalf("v%d jobs=%d: %v", version, jobs, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("v%d jobs=%d: intervals differ from live collector", version, jobs)
			}
		}
	}
}
