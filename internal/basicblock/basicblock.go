// Package basicblock computes the static basic-block map of a compiled
// program: every PC resolves to the block it belongs to in one slice
// lookup. The map is the shared foundation of the phase-analysis BBV
// collector (internal/simpoint) and the block-characterized replay
// engine (internal/loadchar), which both need to turn a straight-line
// PC run into the blocks it covers without touching per-event state.
package basicblock

import "bioperfload/internal/isa"

// Blocks is a static basic-block map. Block leaders are the program
// entry, every control-transfer target, and every instruction
// following a control transfer — the standard definition, computed
// once per compiled program.
type Blocks struct {
	of   []int32
	next []int32 // pc where the block after pc's begins (len(insts) for the last)
	n    int
}

// Map computes the basic-block map of prog.
func Map(prog *isa.Program) *Blocks {
	n := len(prog.Insts)
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for pc := range prog.Insts {
		in := &prog.Insts[pc]
		switch in.Op {
		case isa.OpBr, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBle,
			isa.OpBgt, isa.OpBge, isa.OpJsr:
			if in.Target >= 0 && int(in.Target) < n {
				leader[in.Target] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		case isa.OpRet, isa.OpHalt:
			// Return targets are always JSR successors, which the JSR
			// case already marked; the fall-through slot still starts a
			// fresh block.
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	b := &Blocks{of: make([]int32, n), next: make([]int32, n)}
	id := int32(-1)
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			id++
		}
		b.of[pc] = id
	}
	b.n = int(id) + 1
	nx := int32(n)
	for pc := n - 1; pc >= 0; pc-- {
		b.next[pc] = nx
		if leader[pc] {
			nx = int32(pc)
		}
	}
	return b
}

// NumBlocks returns the number of static basic blocks.
func (b *Blocks) NumBlocks() int { return b.n }

// Of returns the block ID of pc.
func (b *Blocks) Of(pc int32) int32 { return b.of[pc] }

// NextLeader returns the pc at which the block containing pc ends:
// the next block leader, or the program length for the final block.
// Every pc in [pc, NextLeader(pc)) shares Of(pc)'s block.
func (b *Blocks) NextLeader(pc int32) int32 { return b.next[pc] }
