// Package bioperfload reproduces "Load Instruction Characterization
// and Acceleration of the BioPerf Programs" (Ratanaworabhan &
// Burtscher, IISWC 2006) as a self-contained Go library: a MiniC
// compiler targeting an Alpha-flavored simulated machine, ports of the
// nine BioPerf applications (original and load-transformed), the
// load-characterization framework, cache/branch-predictor/pipeline
// models of the paper's four platforms, and generators for every table
// and figure in the evaluation.
//
// Quick start:
//
//	p, _ := bioperfload.Program("hmmsearch")
//	a, _ := bioperfload.Characterize(p, bioperfload.SizeTest)
//	fmt.Printf("loads: %.1f%% of instructions\n", a.Mix().LoadPct)
//
//	alpha := bioperfload.Platforms()[0]
//	orig, _ := bioperfload.Evaluate(p, alpha, bioperfload.SizeTest, false)
//	fast, _ := bioperfload.Evaluate(p, alpha, bioperfload.SizeTest, true)
//	fmt.Printf("speedup: %.1f%%\n",
//		(float64(orig.Cycles)/float64(fast.Cycles)-1)*100)
package bioperfload

import (
	"context"
	"fmt"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/ir"
	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/runner"
	"bioperfload/internal/sim"
	"bioperfload/internal/specx"
)

// Re-exported types: the facade exposes the internal packages' types
// under stable names so example programs and downstream tools can use
// them without reaching into internal paths.
type (
	// BenchProgram is one of the nine BioPerf applications.
	BenchProgram = bio.Program
	// Size selects the input scale (SizeTest/SizeB/SizeC).
	Size = bio.Size
	// Analysis is the single-pass load-characterization observer.
	Analysis = loadchar.Analysis
	// HotLoad is one Table 5-style profile row.
	HotLoad = loadchar.HotLoad
	// Platform is one modeled evaluation machine.
	Platform = platform.Platform
	// PipelineStats is a timing-model result.
	PipelineStats = pipeline.Stats
	// Executable is a compiled simulated-machine program.
	Executable = isa.Program
	// Machine is the functional simulator.
	Machine = sim.Machine
	// CompilerOptions selects optimization level and register budget.
	CompilerOptions = compiler.Options
	// SPECAnalog is one of the Figure 2 comparison programs.
	SPECAnalog = specx.Analog
	// Session is the shared-artifact analysis engine: a memoizing
	// compile/run cache plus a bounded worker pool. All facade
	// entry points delegate to a Session; hold one across calls to
	// compile and functionally simulate each kernel at most once.
	Session = runner.Session
	// Profile is one program's shared characterization run.
	Profile = runner.Profile
	// Fidelity selects the timing tier: FidelityFull is the
	// cycle-level paper-reproduction model, FidelityFast the
	// scoreboard approximation (about an order of magnitude faster,
	// validated on speedup ratios — see internal/scoreboard).
	Fidelity = pipeline.Fidelity
	// SessionStats reports a session's cache counters.
	SessionStats = runner.Stats
)

// Input sizes (class-B and class-C analogs per the paper).
const (
	SizeTest = bio.SizeTest
	SizeB    = bio.SizeB
	SizeC    = bio.SizeC
)

// Timing tiers. Select with Platform.WithFidelity before Evaluate.
const (
	FidelityFull = pipeline.FidelityFull
	FidelityFast = pipeline.FidelityFast
)

// ParseFidelity parses "full" or "fast" (empty defaults to full).
func ParseFidelity(s string) (Fidelity, error) { return pipeline.ParseFidelity(s) }

// Programs returns the nine BioPerf applications in the paper's order.
func Programs() []*BenchProgram { return bio.All() }

// Program returns one application by name.
func Program(name string) (*BenchProgram, error) { return bio.ByName(name) }

// TransformedPrograms returns the six applications the paper
// load-transforms (Section 3.3).
func TransformedPrograms() []*BenchProgram { return bio.Transformed() }

// SPECAnalogs returns the Figure 2 comparison programs.
func SPECAnalogs() []*SPECAnalog { return specx.All() }

// Platforms returns the four Table 7 machines in the paper's order:
// Alpha 21264, PowerPC G5, Pentium 4, Itanium 2.
func Platforms() []Platform { return platform.All() }

// PlatformByName returns one platform model.
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// DefaultCompiler returns the paper's "-O3"-equivalent configuration.
func DefaultCompiler() CompilerOptions { return compiler.Default() }

// UnoptimizedCompiler returns an -O0 configuration (for ablations).
func UnoptimizedCompiler() CompilerOptions { return CompilerOptions{Opt: ir.O0()} }

// CompileMiniC compiles arbitrary MiniC source for the simulated
// machine with the default optimizing configuration.
func CompileMiniC(filename, source string) (*Executable, error) {
	return compiler.Compile(filename, source, compiler.Default())
}

// CompileMiniCWith compiles MiniC with explicit options.
func CompileMiniCWith(filename, source string, opts CompilerOptions) (*Executable, error) {
	return compiler.Compile(filename, source, opts)
}

// NewMachine loads an executable into a fresh functional simulator.
func NewMachine(p *Executable) (*Machine, error) { return sim.New(p) }

// RenderProfile renders a characterization as the canonical profile
// text shared by `cmd/bioperf -profile` and the bioperfd service.
func RenderProfile(name, size string, a *Analysis, hot int) string {
	return loadchar.RenderProfile(name, size, a, hot)
}

// NewSession creates a shared-artifact analysis session whose worker
// pool runs up to jobs simulations concurrently; jobs <= 0 selects
// GOMAXPROCS, jobs == 1 is fully sequential.
func NewSession(jobs int) *Session { return runner.NewSession(jobs) }

// Characterize runs one application (original sources, optimizing
// compiler) under the full load-characterization analysis. One-shot
// convenience over a fresh sequential Session; hold a Session directly
// to characterize several programs or reuse compiled artifacts.
func Characterize(p *BenchProgram, sz Size) (*Analysis, error) {
	prof, err := runner.NewSession(1).Characterize(context.Background(), p, sz)
	if err != nil {
		return nil, fmt.Errorf("characterize: %w", err)
	}
	return prof.Analysis, nil
}

// Evaluate runs one application (original or load-transformed) on a
// platform's timing model, compiling with that platform's register
// budget, and returns the cycle-level statistics.
func Evaluate(p *BenchProgram, plat Platform, sz Size, transformed bool) (PipelineStats, error) {
	return runner.NewSession(1).Evaluate(context.Background(), p, plat, sz, transformed)
}

// Speedup measures the load transformation's gain for one application
// on one platform: (original cycles / transformed cycles) - 1. The
// two timing runs share one session's compile cache.
func Speedup(p *BenchProgram, plat Platform, sz Size) (float64, error) {
	if !p.Transformable {
		return 0, fmt.Errorf("bioperfload: %s is not load-transformed in the paper", p.Name)
	}
	s := runner.NewSession(1)
	orig, err := s.Evaluate(context.Background(), p, plat, sz, false)
	if err != nil {
		return 0, err
	}
	trans, err := s.Evaluate(context.Background(), p, plat, sz, true)
	if err != nil {
		return 0, err
	}
	if trans.Cycles == 0 {
		return 0, fmt.Errorf("bioperfload: zero cycles")
	}
	return float64(orig.Cycles)/float64(trans.Cycles) - 1, nil
}
