module bioperfload

go 1.24
