package bioperfload

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation. Each benchmark regenerates its artifact
// end to end (compile -> simulate -> analyze) at the test input size;
// cmd/experiments runs the same generators at the class-B/C sizes and
// prints the paper-style rows recorded in EXPERIMENTS.md.

import (
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/experiments"
)

func benchProfiles(b *testing.B) []*experiments.ProgramProfile {
	b.Helper()
	profiles, err := experiments.Characterize(bio.SizeTest)
	if err != nil {
		b.Fatal(err)
	}
	return profiles
}

// BenchmarkFig1InstructionMix regenerates Figure 1 (instruction
// profile of the nine applications).
func BenchmarkFig1InstructionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(benchProfiles(b))
		if len(rows) != 9 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable1Counts regenerates Table 1 (instruction counts and
// floating-point fractions).
func BenchmarkTable1Counts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchProfiles(b))
		if len(rows) != 9 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFig2Coverage regenerates Figure 2 (static-load coverage,
// BioPerf vs SPEC CPU2000 analogs).
func BenchmarkFig2Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig2(bio.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 6 {
			b.Fatal("bad series count")
		}
	}
}

// BenchmarkTable2Cache regenerates Table 2 (cache performance under
// the Table 3 configuration).
func BenchmarkTable2Cache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchProfiles(b))
		if len(rows) != 9 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable4Sequences regenerates Table 4 (load-to-branch and
// branch-to-load sequences under the hybrid predictor).
func BenchmarkTable4Sequences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(benchProfiles(b))
		if len(rows) != 9 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable5HotLoads regenerates Table 5 (hmmsearch's hot-load
// profile with source attribution).
func BenchmarkTable5HotLoads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(bio.SizeTest, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable8Runtimes regenerates Table 8 (original vs
// load-transformed cycles on the four platform models).
func BenchmarkTable8Runtimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table8(bio.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 24 {
			b.Fatal("bad cell count")
		}
	}
}

// BenchmarkFig9Speedups regenerates Figure 9 (per-platform speedups
// with harmonic means).
func BenchmarkFig9Speedups(b *testing.B) {
	cells, err := experiments.Table8(bio.SizeTest)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(cells)
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkCompileHmmsearch measures toolchain speed on the largest
// kernel source.
func BenchmarkCompileHmmsearch(b *testing.B) {
	p, err := Program("hmmsearch")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := p.Compile(true, DefaultCompiler()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHmmsearch measures bare functional-simulation
// throughput (instructions reported via b.ReportMetric).
func BenchmarkSimulateHmmsearch(b *testing.B) {
	p, err := Program("hmmsearch")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := p.Compile(false, DefaultCompiler())
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Bind(m, SizeTest); err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
